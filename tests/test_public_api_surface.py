"""The frozen public API surface and the spec wire contract.

``repro.api`` is the facade external consumers (and the service) build
against.  Its ``__all__`` is a compatibility contract: removing or
renaming a name is a breaking change, and this test is the tripwire —
the pinned list below must be edited *consciously* in the same commit.

The second half pins the wire format: every registered scheme's spec
must survive ``to_dict -> json -> from_dict`` with an identical content
key, because the service uses that key as the dedup/job/cache id.
"""

import json

import pytest

import repro
import repro.api as api
from repro.api import ExperimentSpec, UnknownSchemeError, list_schemes
from repro.core.config import VictimPolicy
from repro.workloads import PROFILES

#: The frozen contract.  Additions are appended; removals are breaking.
PINNED_ALL = [
    "DEFAULT_INSTRUCTIONS",
    "ExperimentSpec",
    "MachineConfig",
    "SimulationResult",
    "result_from_dict",
    "result_to_dict",
    "ParallelRunner",
    "ReadThroughCache",
    "ResultCache",
    "run_experiment",
    "CampaignConfig",
    "CampaignReport",
    "create_engine",
    "run_campaign",
    "DL1Outcome",
    "DataL1",
    "InjectionTarget",
    "SchemeEntry",
    "SchemeInfo",
    "UnknownSchemeError",
    "check_scheme",
    "get_scheme",
    "list_schemes",
    "register_scheme",
]


class TestFacade:
    def test_all_is_pinned(self):
        assert sorted(api.__all__) == sorted(PINNED_ALL)

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_reachable_from_package_root(self):
        assert repro.api is api
        assert "api" in repro.__all__

    def test_no_private_leakage(self):
        assert not [n for n in api.__all__ if n.startswith("_")]

    def test_unknown_scheme_error_is_value_error(self):
        # Pre-facade callers catch ValueError; the subclassing keeps
        # them working while giving the service a precise type for 400.
        assert issubclass(UnknownSchemeError, ValueError)
        with pytest.raises(ValueError):
            api.get_scheme("no-such-scheme")

    def test_get_scheme_error_lists_catalog(self):
        with pytest.raises(UnknownSchemeError) as exc_info:
            api.get_scheme("no-such-scheme")
        message = str(exc_info.value)
        for name in list_schemes():
            assert name in message


class TestSpecWireRoundTrip:
    def test_every_registered_scheme_round_trips(self):
        for scheme in list_schemes():
            spec = ExperimentSpec("gzip", scheme, n_instructions=5000)
            wire = json.loads(json.dumps(spec.to_dict()))
            back = ExperimentSpec.from_dict(wire)
            assert back == spec
            assert back.key() == spec.key()

    def test_round_trip_with_enum_kwargs(self):
        spec = ExperimentSpec(
            "mcf",
            "ICR-P-PS(S)",
            n_instructions=4000,
            error_rate=1e-2,
            scheme_kwargs={
                "decay_window": 1000,
                "victim_policy": VictimPolicy.DEAD_FIRST,
                "leave_replicas_on_evict": True,
            },
        )
        wire = json.loads(json.dumps(spec.to_dict()))
        back = ExperimentSpec.from_dict(wire)
        assert back == spec
        assert back.key() == spec.key()
        assert dict(back.scheme_kwargs)["victim_policy"] is (
            VictimPolicy.DEAD_FIRST
        )

    def test_round_trip_with_profile_benchmark(self):
        profile = PROFILES["gzip"]
        spec = ExperimentSpec(profile, "BaseP", n_instructions=3000)
        wire = json.loads(json.dumps(spec.to_dict()))
        back = ExperimentSpec.from_dict(wire)
        assert back.key() == spec.key()

    def test_round_trip_with_machine(self):
        machine = api.MachineConfig()
        spec = ExperimentSpec(
            "gzip", "BaseP", n_instructions=3000, machine=machine
        )
        wire = json.loads(json.dumps(spec.to_dict()))
        back = ExperimentSpec.from_dict(wire)
        assert back.key() == spec.key()

    def test_all_backends_round_trip(self):
        for backend in ("object", "array"):
            spec = ExperimentSpec(
                "gzip", "BaseP", n_instructions=3000, backend=backend
            )
            back = ExperimentSpec.from_dict(spec.to_dict())
            assert back.backend == backend
            assert back.key() == spec.key()

    def test_unknown_scheme_rejected_on_from_dict(self):
        wire = ExperimentSpec("gzip", "BaseP", n_instructions=3000).to_dict()
        wire["scheme"] = "no-such-scheme"
        with pytest.raises(UnknownSchemeError):
            ExperimentSpec.from_dict(wire)

    def test_format_version_checked(self):
        wire = ExperimentSpec("gzip", "BaseP").to_dict()
        wire["format"] = 999
        with pytest.raises(ValueError, match="format"):
            ExperimentSpec.from_dict(wire)


class TestPluginProtocol:
    def test_schemes_satisfy_data_l1(self):
        from repro.api import DataL1
        from repro.core import make_cache

        for scheme in list_schemes():
            model = make_cache(scheme)
            target = getattr(model, "injection_target", model)
            assert isinstance(target, DataL1), scheme

    def test_outcome_shape(self):
        from repro.api import DL1Outcome

        outcome = DL1Outcome(hit=True, latency=1)
        assert outcome.hit and outcome.latency == 1
        assert outcome.replica_fill is False
