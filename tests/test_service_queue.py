"""Unit tests for the persistent job queue and the HTTP layer."""

import asyncio
import json

import pytest

from repro.service.http import (
    HttpError,
    Request,
    json_response,
    read_request,
    response_bytes,
    sse_event,
)
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    PersistentJobQueue,
)


class TestJobRecord:
    def test_round_trip(self):
        record = JobRecord(
            id="abc", kind="experiment", payload={"spec": {"x": 1}},
            state=DONE, attempts=2, error=None,
        )
        back = JobRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert back == record

    def test_terminal_states(self):
        record = JobRecord(id="a", kind="experiment", payload={})
        assert not record.terminal
        record.state = RUNNING
        assert not record.terminal
        record.state = DONE
        assert record.terminal
        record.state = FAILED
        assert record.terminal

    def test_summary_omits_payload(self):
        record = JobRecord(id="a", kind="experiment", payload={"big": "x"})
        assert "payload" not in record.summary()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            JobRecord.from_dict({"format": 999})


class TestPersistentJobQueue:
    def _record(self, job_id="job-1", state=QUEUED):
        return JobRecord(
            id=job_id, kind="experiment",
            payload={"spec": {"benchmark": "gzip"}}, state=state,
        )

    def test_save_load_round_trip(self, tmp_path):
        queue = PersistentJobQueue(tmp_path / "q")
        record = self._record()
        queue.save(record)
        assert PersistentJobQueue(tmp_path / "q").load() == [record]

    def test_running_jobs_demoted_to_queued_on_load(self, tmp_path):
        """The crash-recovery contract: interrupted work re-queues."""
        queue = PersistentJobQueue(tmp_path / "q")
        record = self._record(state=RUNNING)
        record.started = 123.0
        queue.save(record)
        loaded = PersistentJobQueue(tmp_path / "q").load()
        assert loaded[0].state == QUEUED
        assert loaded[0].started is None
        # ... and the demotion itself was persisted.
        reloaded = PersistentJobQueue(tmp_path / "q").load()
        assert reloaded[0].state == QUEUED

    def test_terminal_jobs_load_unchanged(self, tmp_path):
        queue = PersistentJobQueue(tmp_path / "q")
        queue.save(self._record(state=DONE))
        assert PersistentJobQueue(tmp_path / "q").load()[0].state == DONE

    def test_corrupt_file_skipped_not_raised(self, tmp_path):
        queue = PersistentJobQueue(tmp_path / "q")
        queue.save(self._record())
        (tmp_path / "q" / "torn.json").write_text("{not json")
        assert len(PersistentJobQueue(tmp_path / "q").load()) == 1

    def test_load_orders_by_submission_time(self, tmp_path):
        queue = PersistentJobQueue(tmp_path / "q")
        second = self._record("b")
        second.created = 2.0
        first = self._record("a")
        first.created = 1.0
        queue.save(second)
        queue.save(first)
        assert [r.id for r in queue.load()] == ["a", "b"]

    def test_remove(self, tmp_path):
        queue = PersistentJobQueue(tmp_path / "q")
        queue.save(self._record())
        queue.remove("job-1")
        queue.remove("job-1")  # idempotent
        assert queue.load() == []

    def test_path_traversal_neutralized(self, tmp_path):
        queue = PersistentJobQueue(tmp_path / "q")
        path = queue.path_for("../../evil")
        assert path.parent == queue.root


def _parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestHttpParser:
    def test_get_with_query(self):
        req = _parse(b"GET /v1/jobs/abc/events?since=3 HTTP/1.1\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/v1/jobs/abc/events"
        assert req.query == {"since": "3"}

    def test_post_with_body(self):
        body = b'{"spec": 1}'
        raw = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        req = _parse(raw)
        assert req.json() == {"spec": 1}

    def test_clean_eof_is_none(self):
        assert _parse(b"") is None

    def test_truncated_request_is_400(self):
        with pytest.raises(HttpError) as exc_info:
            _parse(b"GET /x HTTP/1.1\r\n")  # no terminating blank line
        assert exc_info.value.status == 400

    def test_truncated_body_is_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(HttpError) as exc_info:
            _parse(raw)
        assert exc_info.value.status == 400

    def test_oversized_body_is_413(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        with pytest.raises(HttpError) as exc_info:
            _parse(raw)
        assert exc_info.value.status == 413

    def test_malformed_json_body_is_400(self):
        req = Request(method="POST", path="/x", body=b"{nope")
        with pytest.raises(HttpError) as exc_info:
            req.json()
        assert exc_info.value.status == 400


class TestHttpResponses:
    def test_response_has_length_and_close(self):
        raw = response_bytes(200, b"hi")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 2" in head
        assert b"Connection: close" in head
        assert body == b"hi"

    def test_json_response_round_trips(self):
        raw = json_response(202, {"a": 1})
        _, _, body = raw.partition(b"\r\n\r\n")
        assert json.loads(body) == {"a": 1}

    def test_sse_event_frame(self):
        frame = sse_event("done", {"seq": 4}, event_id=4).decode()
        assert frame.startswith("id: 4\n")
        assert "event: done\n" in frame
        assert frame.endswith("\n\n")
        data_line = [
            line for line in frame.splitlines() if line.startswith("data: ")
        ][0]
        assert json.loads(data_line[len("data: "):]) == {"seq": 4}
