"""Tests for the trace container."""

import pytest

from repro.cpu.isa import (
    MEMORY_OPS,
    OP_BRANCH,
    OP_INT_ALU,
    OP_LOAD,
    OP_NAMES,
    OP_STORE,
    Trace,
)


class TestTrace:
    def test_append_and_len(self):
        trace = Trace()
        trace.append(OP_INT_ALU, dest=1)
        trace.append(OP_LOAD, dest=2, addr=0x1000)
        assert len(trace) == 2

    def test_columns_parallel(self):
        trace = Trace()
        trace.append(OP_LOAD, dest=3, src1=1, pc=0x400000, addr=0x80)
        assert trace.op[0] == OP_LOAD
        assert trace.dest[0] == 3
        assert trace.addr[0] == 0x80

    def test_mix_fractions(self):
        trace = Trace()
        for _ in range(3):
            trace.append(OP_INT_ALU)
        trace.append(OP_LOAD, addr=0)
        mix = trace.mix()
        assert mix["int_alu"] == pytest.approx(0.75)
        assert mix["load"] == pytest.approx(0.25)

    def test_memory_fraction(self):
        trace = Trace()
        trace.append(OP_LOAD, addr=0)
        trace.append(OP_STORE, addr=0)
        trace.append(OP_INT_ALU)
        trace.append(OP_BRANCH)
        assert trace.memory_fraction() == pytest.approx(0.5)

    def test_empty_trace_metrics(self):
        trace = Trace()
        assert trace.mix() == {}
        assert trace.memory_fraction() == 0.0

    def test_validate_passes_for_good_trace(self):
        trace = Trace()
        trace.append(OP_LOAD, dest=1, addr=0x100, pc=0x400000)
        trace.validate()

    def test_validate_catches_unknown_op(self):
        trace = Trace()
        trace.append(OP_INT_ALU)
        trace.op[0] = 99
        with pytest.raises(ValueError):
            trace.validate()

    def test_validate_catches_ragged_columns(self):
        trace = Trace()
        trace.append(OP_INT_ALU)
        trace.dest.append(1)  # now ragged
        with pytest.raises(ValueError):
            trace.validate()

    def test_validate_catches_bad_register(self):
        trace = Trace()
        trace.append(OP_INT_ALU, dest=40)
        with pytest.raises(ValueError):
            trace.validate()

    def test_op_names_cover_memory_ops(self):
        for op in MEMORY_OPS:
            assert op in OP_NAMES
