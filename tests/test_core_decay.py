"""Tests for the cache-decay dead-block predictor."""

import pytest

from repro.cache.block import CacheBlock
from repro.core.decay import SATURATION_TICKS, DeadBlockPredictor


def make_block(last_access=0):
    block = CacheBlock()
    block.fill(0x100, last_access)
    return block


class TestAggressiveWindow:
    def test_window_zero_everything_dead(self):
        predictor = DeadBlockPredictor(0)
        block = make_block(last_access=100)
        assert predictor.is_dead(block, 100)
        assert predictor.is_dead(block, 101)

    def test_window_zero_counter_saturated(self):
        predictor = DeadBlockPredictor(0)
        assert predictor.counter_value(make_block(), 0) == SATURATION_TICKS


class TestDisabledDecay:
    def test_none_window_never_dead(self):
        predictor = DeadBlockPredictor(None)
        block = make_block(last_access=0)
        assert not predictor.is_dead(block, 10**9)

    def test_none_window_counter_is_zero(self):
        predictor = DeadBlockPredictor(None)
        assert predictor.counter_value(make_block(), 10**9) == 0


class TestFiniteWindow:
    def test_tick_period_is_quarter_window(self):
        assert DeadBlockPredictor(1000).tick_period == 250

    def test_fresh_block_alive(self):
        predictor = DeadBlockPredictor(1000)
        block = make_block(last_access=0)
        assert not predictor.is_dead(block, 0)
        assert not predictor.is_dead(block, 999 - 1)

    def test_dead_after_four_ticks(self):
        predictor = DeadBlockPredictor(1000)
        block = make_block(last_access=0)
        assert predictor.is_dead(block, 1000)

    def test_counter_increments_on_tick_boundaries(self):
        predictor = DeadBlockPredictor(1000)
        block = make_block(last_access=0)
        assert predictor.counter_value(block, 0) == 0
        assert predictor.counter_value(block, 249) == 0
        assert predictor.counter_value(block, 250) == 1
        assert predictor.counter_value(block, 750) == 3
        assert predictor.counter_value(block, 1000) == 4

    def test_counter_saturates(self):
        predictor = DeadBlockPredictor(1000)
        block = make_block(last_access=0)
        assert predictor.counter_value(block, 10**6) == SATURATION_TICKS

    def test_access_resets_deadness(self):
        predictor = DeadBlockPredictor(1000)
        block = make_block(last_access=0)
        assert predictor.is_dead(block, 2000)
        block.touch(2000)
        assert not predictor.is_dead(block, 2100)

    def test_aligned_ticks_not_relative(self):
        """Ticks are global (aligned), like a shared hardware counter."""
        predictor = DeadBlockPredictor(1000)
        # Accessed just before a tick boundary: first tick arrives quickly.
        block = make_block(last_access=249)
        assert predictor.counter_value(block, 250) == 1

    def test_invalid_block_is_dead(self):
        predictor = DeadBlockPredictor(10**6)
        block = CacheBlock()
        assert predictor.is_dead(block, 0)


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            DeadBlockPredictor(-1)

    def test_storage_overhead(self):
        predictor = DeadBlockPredictor(1000)
        # 2 bits per line; 256 lines in the 16KB dL1 -> 512 bits = 64 bytes,
        # the paper's 0.39% for 64-byte lines.
        bits = predictor.storage_overhead_bits(256)
        assert bits == 512
        assert bits / (256 * 64 * 8) == pytest.approx(0.0039, abs=1e-4)
