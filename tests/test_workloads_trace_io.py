"""Tests for binary trace persistence."""

import pytest

from repro.cpu.isa import OP_BRANCH, OP_INT_ALU, OP_LOAD, Trace
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec2000 import profile_for
from repro.workloads.trace_io import load_trace, save_trace


class TestRoundTrip:
    def test_small_handmade_trace(self, tmp_path):
        trace = Trace(name="hand")
        trace.append(OP_LOAD, dest=1, src1=2, pc=0x400000, addr=0x1000)
        trace.append(OP_BRANCH, pc=0x400004, taken=True, target=0x400000)
        trace.append(OP_INT_ALU, dest=3, src1=1, src2=2, pc=0x400008)
        path = tmp_path / "t.icrt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "hand"
        for column in ("op", "dest", "src1", "src2", "pc", "addr", "taken", "target"):
            assert getattr(loaded, column) == getattr(trace, column)

    def test_generated_trace_roundtrip(self, tmp_path):
        trace = WorkloadGenerator(profile_for("gzip")).generate(8000)
        path = tmp_path / "gzip.icrt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == 8000
        assert loaded.op == trace.op
        assert loaded.addr == trace.addr
        assert loaded.taken == trace.taken

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.cache.hierarchy import MemoryHierarchy
        from repro.core.schemes import make_cache
        from repro.cpu.pipeline import OutOfOrderPipeline

        trace = WorkloadGenerator(profile_for("mesa")).generate(5000)
        path = tmp_path / "mesa.icrt"
        save_trace(trace, path)
        loaded = load_trace(path)

        def cycles(t):
            hierarchy = MemoryHierarchy(make_cache("BaseP"))
            return OutOfOrderPipeline(hierarchy).run(t).cycles

        assert cycles(loaded) == cycles(trace)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.icrt"
        save_trace(Trace(name="empty"), path)
        assert len(load_trace(path)) == 0

    def test_compression_is_effective(self, tmp_path):
        trace = WorkloadGenerator(profile_for("gzip")).generate(20_000)
        path = tmp_path / "c.icrt"
        save_trace(trace, path)
        raw_size = len(trace) * 8 * 8
        assert path.stat().st_size < raw_size / 2


class TestErrorHandling:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.icrt"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(ValueError, match="not an ICRT"):
            load_trace(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.icrt"
        path.write_bytes(b"ICRT" + (99).to_bytes(4, "little") + b"\x00" * 64)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        trace = Trace(name="x")
        trace.append(OP_INT_ALU, dest=1)
        path = tmp_path / "t.icrt"
        save_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 4])
        with pytest.raises(Exception):
            load_trace(path)

    def test_invalid_trace_not_saved(self, tmp_path):
        trace = Trace(name="bad")
        trace.append(OP_INT_ALU)
        trace.op[0] = 99  # corrupt
        with pytest.raises(ValueError):
            save_trace(trace, tmp_path / "x.icrt")
