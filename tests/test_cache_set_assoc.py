"""Tests for the generic set-associative cache and its geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_assoc import CacheGeometry, SetAssociativeCache


class TestCacheGeometry:
    def test_table1_dl1(self):
        g = CacheGeometry(16 * 1024, 4, 64)
        assert g.n_sets == 64
        assert g.block_offset_bits == 6

    def test_table1_l2(self):
        g = CacheGeometry(256 * 1024, 4, 64)
        assert g.n_sets == 1024

    def test_table1_il1(self):
        g = CacheGeometry(16 * 1024, 1, 32)
        assert g.n_sets == 512

    def test_block_addr(self):
        g = CacheGeometry(16 * 1024, 4, 64)
        assert g.block_addr(0) == 0
        assert g.block_addr(63) == 0
        assert g.block_addr(64) == 1

    def test_set_index_wraps(self):
        g = CacheGeometry(16 * 1024, 4, 64)
        assert g.set_index(0) == 0
        assert g.set_index(64) == 0
        assert g.set_index(65) == 1

    def test_word_index(self):
        g = CacheGeometry(16 * 1024, 4, 64)
        assert g.word_index(0) == 0
        assert g.word_index(8) == 1
        assert g.word_index(56) == 7
        assert g.word_index(64) == 0

    @pytest.mark.parametrize(
        "size,assoc,block",
        [(1000, 4, 64), (16384, 3, 64), (16384, 4, 48), (0, 1, 64)],
    )
    def test_invalid_geometry_rejected(self, size, assoc, block):
        with pytest.raises(ValueError):
            CacheGeometry(size, assoc, block)


@pytest.fixture
def cache():
    return SetAssociativeCache(CacheGeometry(4 * 1024, 2, 64))  # 32 sets, 2-way


class TestAccessPath:
    def test_cold_miss_then_hit(self, cache):
        assert cache.access(0x1000, False, 0) is False
        assert cache.access(0x1000, False, 1) is True

    def test_same_block_different_offset_hits(self, cache):
        cache.access(0x1000, False, 0)
        assert cache.access(0x103F, False, 1) is True

    def test_adjacent_block_misses(self, cache):
        cache.access(0x1000, False, 0)
        assert cache.access(0x1040, False, 1) is False

    def test_write_allocates(self, cache):
        assert cache.access(0x2000, True, 0) is False
        assert cache.access(0x2000, False, 1) is True

    def test_write_sets_dirty(self, cache):
        cache.access(0x2000, True, 0)
        block = cache.probe(cache.geometry.block_addr(0x2000))
        assert block.dirty

    def test_read_does_not_set_dirty(self, cache):
        cache.access(0x2000, False, 0)
        block = cache.probe(cache.geometry.block_addr(0x2000))
        assert not block.dirty

    def test_stats_counters(self, cache):
        cache.access(0x0, False, 0)
        cache.access(0x0, False, 1)
        cache.access(0x0, True, 2)
        s = cache.stats
        assert s.loads == 2 and s.stores == 1
        assert s.load_misses == 1 and s.load_hits == 1 and s.store_hits == 1
        assert s.miss_rate == pytest.approx(1 / 3)


class TestLRUReplacement:
    def _same_set_addrs(self, cache, count):
        n_sets = cache.geometry.n_sets
        block = cache.geometry.block_size
        return [i * n_sets * block for i in range(count)]

    def test_lru_evicts_least_recent(self, cache):
        a, b, c = self._same_set_addrs(cache, 3)
        cache.access(a, False, 0)
        cache.access(b, False, 1)
        cache.access(a, False, 2)  # a is now MRU
        cache.access(c, False, 3)  # evicts b
        assert cache.access(a, False, 4) is True
        assert cache.access(b, False, 5) is False

    def test_invalid_ways_fill_first(self, cache):
        a, b = self._same_set_addrs(cache, 2)
        cache.access(a, False, 0)
        cache.access(b, False, 1)
        assert cache.access(a, False, 2) is True  # both resident

    def test_dirty_eviction_reports_writeback(self, cache):
        evictions = []
        cache.on_evict = evictions.append
        a, b, c = self._same_set_addrs(cache, 3)
        cache.access(a, True, 0)  # dirty
        cache.access(b, False, 1)
        cache.access(c, False, 2)  # evicts dirty a
        dirty = [e for e in evictions if e.dirty]
        assert len(dirty) == 1
        assert dirty[0].block_addr == cache.geometry.block_addr(a)
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self, cache):
        a, b, c = self._same_set_addrs(cache, 3)
        for i, addr in enumerate((a, b, c)):
            cache.access(addr, False, i)
        assert cache.stats.writebacks == 0


class TestContentsSummary:
    def test_census(self, cache):
        cache.access(0x0, True, 0)
        cache.access(0x40, False, 1)
        summary = cache.contents_summary()
        assert summary["valid"] == 2
        assert summary["dirty"] == 1
        assert summary["primaries"] == 2
        assert summary["replicas"] == 0


class TestAgainstReferenceModel:
    """Property test: the cache must agree with a brute-force LRU model."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),  # block index
                st.booleans(),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_sequence_matches_reference(self, accesses):
        geometry = CacheGeometry(2 * 1024, 2, 64)  # 16 sets, 2-way
        cache = SetAssociativeCache(geometry)
        # Reference: per-set list of block addrs in MRU order.
        reference: dict[int, list[int]] = {}
        for now, (block, is_write) in enumerate(accesses):
            addr = block * geometry.block_size
            block_addr = geometry.block_addr(addr)
            set_index = geometry.set_index(block_addr)
            mru = reference.setdefault(set_index, [])
            expected_hit = block_addr in mru
            got_hit = cache.access(addr, is_write, now)
            assert got_hit == expected_hit
            if expected_hit:
                mru.remove(block_addr)
            mru.insert(0, block_addr)
            del mru[geometry.associativity :]
