"""Shared test configuration.

Adds the ``--update-golden`` flag used by tests/test_golden_results.py:

    PYTHONPATH=src python -m pytest tests/test_golden_results.py --update-golden

regenerates every file under tests/golden/ from the current simulator and
skips the comparisons.  Review the resulting diff before committing — a
golden change is a behavior change.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json instead of comparing against them",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
