"""Tests for the fault injector and the end-to-end recovery paths."""

import random

import pytest

from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config
from repro.errors.injector import FaultInjector, derive_stream_seed
from repro.errors.models import FaultSite, make_model


def make_cache(scheme="BaseP", **kwargs):
    kwargs.setdefault("track_data", True)
    kwargs.setdefault("decay_window", 0)
    kwargs.setdefault("replicate_into_invalid", True)
    return ICRCache(make_config(scheme, **kwargs))


def site_of(cache, byte_addr, word=0, bit=0):
    block_addr = cache.geometry.block_addr(byte_addr)
    set_index = cache.geometry.set_index(block_addr)
    for way, block in enumerate(cache.sets[set_index]):
        if block.valid and block.block_addr == block_addr and not block.is_replica:
            return FaultSite(set_index, way, word, bit)
    raise AssertionError("block not resident")


class TestInjectorMechanics:
    def test_requires_track_data(self):
        cache = ICRCache(make_config("BaseP"))
        with pytest.raises(ValueError):
            FaultInjector(cache, 0.001)

    def test_probability_validated(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            FaultInjector(cache, 1.5)

    def test_zero_rate_never_injects(self):
        cache = make_cache()
        injector = FaultInjector(cache, 0.0)
        cache.access(0, True, 0)
        assert injector.advance(10**6) == 0
        assert cache.stats.errors_injected == 0

    def test_geometric_rate_statistics(self):
        """Mean inter-arrival of faults must approximate 1/p."""
        cache = make_cache()
        for i in range(64):
            cache.access(i * 64, True, i)
        injector = FaultInjector(cache, 0.01, seed=42)
        flips = injector.advance(100_000)
        # Expect ~1000 strikes; allow generous statistical slack.
        assert 700 < flips < 1300

    def test_determinism_across_runs(self):
        counts = []
        for _ in range(2):
            cache = make_cache()
            for i in range(64):
                cache.access(i * 64, True, i)
            injector = FaultInjector(cache, 0.01, seed=7)
            counts.append(injector.advance(50_000))
        assert counts[0] == counts[1]

    def test_advance_is_monotonic(self):
        cache = make_cache()
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.5, seed=1)
        a = injector.advance(100)
        b = injector.advance(100)  # same time: no new strikes
        assert b == 0 or a >= 0


def _flip_history(seed, model="burst", steps=40):
    """The per-step flip counts of one injector — its fault fingerprint."""
    cache = make_cache()
    for i in range(64):
        cache.access(i * 64, True, i)
    injector = FaultInjector(cache, 0.02, model=model, seed=seed)
    return [injector.advance(t * 250) for t in range(1, steps + 1)]


class TestSeedStreamIndependence:
    """Regression tests for the seed+1 stream-aliasing bug.

    The iL1 injector used to be seeded ``error_seed + 1``, so the iL1
    stream of trial *s* was bit-for-bit the dL1 stream of trial *s + 1* —
    two "independent" Monte Carlo trials shared a fault history.  Streams
    are now derived by hashing ``(seed, stream name)``.
    """

    def test_derive_stream_seed_deterministic(self):
        assert derive_stream_seed(7, "l1i") == derive_stream_seed(7, "l1i")

    def test_streams_and_seeds_decorrelated(self):
        assert derive_stream_seed(7, "l1i") != derive_stream_seed(7, "dl1")
        assert derive_stream_seed(7, "l1i") != derive_stream_seed(8, "l1i")

    def test_never_a_neighbouring_integer_seed(self):
        # The exact historical failure: derived seed == seed + 1.
        for seed in range(64):
            derived = derive_stream_seed(seed, "l1i")
            assert abs(derived - seed) > 1000

    @pytest.mark.parametrize("model", ["random", "burst"])
    def test_adjacent_trial_seeds_never_share_a_stream(self, model):
        # Trial s's derived iL1 stream vs trial s+1's plain dL1 stream:
        # identical under the old derivation, independent now — for the
        # single-draw models and the multi-draw burst model alike.
        for seed in (0, 7, 12344):
            il1 = _flip_history(derive_stream_seed(seed, "l1i"), model=model)
            dl1_next = _flip_history(seed + 1, model=model)
            assert il1 != dl1_next
            # Sanity: the fingerprint itself is deterministic.
            assert il1 == _flip_history(derive_stream_seed(seed, "l1i"), model=model)


class TestBurstModel:
    def test_sites_form_one_contiguous_run(self):
        cache = make_cache()
        for i in range(16):
            cache.access(i * 64, True, i)
        model = make_model("burst")
        rng = random.Random(3)
        for _ in range(50):
            sites = model.sites(cache, rng)
            assert 1 <= len(sites) <= model.MAX_LENGTH
            assert len({(s.set_index, s.way) for s in sites}) == 1
            # Consecutive bit positions within the line's flat bit space.
            for a, b in zip(sites, sites[1:]):
                assert (b.word_index, b.bit) > (a.word_index, a.bit)

    def test_bursts_defeat_parity_in_one_word(self):
        # An even number of flips inside one byte escapes parity; a burst
        # makes that outcome common — over many strikes at least one must
        # produce a silent corruption or a detected multi-bit error.
        cache = make_cache()
        for i in range(64):
            cache.access(i * 64, True, i)
        injector = FaultInjector(cache, 0.05, model="burst", seed=11)
        injector.advance(20_000)
        assert cache.stats.errors_injected > 0
        for i in range(64):
            cache.access(i * 64, False, 100_000 + i)
        assert (
            cache.stats.silent_corruptions
            + cache.stats.load_errors_detected
            + cache.stats.load_errors_unrecoverable
        ) > 0


class TestRecoveryPaths:
    def test_basep_clean_block_recovers_from_l2(self):
        cache = make_cache("BaseP")
        cache.access(0, False, 0)  # clean fill
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        outcome = cache.access(0, False, 1)
        assert outcome.latency > 1  # refetch charged
        assert cache.stats.load_errors_recovered_l2 == 1
        assert cache.stats.load_errors_unrecoverable == 0

    def test_basep_dirty_block_is_unrecoverable(self):
        cache = make_cache("BaseP")
        cache.access(0, True, 0)  # dirty
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(0, False, 1)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_baseecc_corrects_single_bit_in_dirty_block(self):
        cache = make_cache("BaseECC")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(0, False, 1)
        assert cache.stats.load_errors_corrected_ecc == 1
        assert cache.stats.load_errors_unrecoverable == 0

    def test_baseecc_double_bit_dirty_is_unrecoverable(self):
        cache = make_cache("BaseECC")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        injector.force_fault(site_of(cache, 0, word=0, bit=9))
        cache.access(0, False, 1)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_icr_recovers_dirty_block_from_replica(self):
        """The paper's headline reliability win: parity + replica recovery."""
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)  # dirty + replicated
        assert cache.probe(0).has_replica
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        outcome = cache.access(0, False, 1)
        assert cache.stats.load_errors_recovered_replica == 1
        assert cache.stats.load_errors_unrecoverable == 0
        assert outcome.latency == 2  # one extra cycle for the replica

    def test_icr_scrubs_primary_after_replica_recovery(self):
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(0, False, 1)
        # Second load sees no error.
        cache.access(0, False, 2)
        assert cache.stats.load_errors_detected == 1

    def test_icr_unreplicated_dirty_still_unrecoverable(self):
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)
        primary = cache.probe(0)
        cache.evict(primary.replica_refs[0])
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(0, False, 1)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_corrupted_replica_falls_back(self):
        """Error in both primary and replica word: behave like unreplicated."""
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)
        primary = cache.probe(0)
        replica = primary.replica_refs[0]
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        replica.words[0]._cell.flip_data_bit(5)
        cache.access(0, False, 1)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_silent_corruption_detected_by_golden_compare(self):
        """Two flips in one byte escape parity; the simulator still sees it."""
        cache = make_cache("BaseP")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=0))
        injector.force_fault(site_of(cache, 0, word=0, bit=1))
        cache.access(0, False, 1)
        assert cache.stats.silent_corruptions == 1
        assert cache.stats.load_errors_detected == 0

    def test_error_in_untouched_word_not_seen(self):
        cache = make_cache("BaseP")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=5, bit=3))
        cache.access(0, False, 1)  # loads word 0
        assert cache.stats.load_errors_detected == 0
