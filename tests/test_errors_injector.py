"""Tests for the fault injector and the end-to-end recovery paths."""

import pytest

from repro.cache.block import CacheBlock
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config
from repro.errors.injector import FaultInjector
from repro.errors.models import FaultSite


def make_cache(scheme="BaseP", **kwargs):
    kwargs.setdefault("track_data", True)
    kwargs.setdefault("decay_window", 0)
    kwargs.setdefault("replicate_into_invalid", True)
    return ICRCache(make_config(scheme, **kwargs))


def site_of(cache, byte_addr, word=0, bit=0):
    block_addr = cache.geometry.block_addr(byte_addr)
    set_index = cache.geometry.set_index(block_addr)
    for way, block in enumerate(cache.sets[set_index]):
        if block.valid and block.block_addr == block_addr and not block.is_replica:
            return FaultSite(set_index, way, word, bit)
    raise AssertionError("block not resident")


class TestInjectorMechanics:
    def test_requires_track_data(self):
        cache = ICRCache(make_config("BaseP"))
        with pytest.raises(ValueError):
            FaultInjector(cache, 0.001)

    def test_probability_validated(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            FaultInjector(cache, 1.5)

    def test_zero_rate_never_injects(self):
        cache = make_cache()
        injector = FaultInjector(cache, 0.0)
        cache.access(0, True, 0)
        assert injector.advance(10**6) == 0
        assert cache.stats.errors_injected == 0

    def test_geometric_rate_statistics(self):
        """Mean inter-arrival of faults must approximate 1/p."""
        cache = make_cache()
        for i in range(64):
            cache.access(i * 64, True, i)
        injector = FaultInjector(cache, 0.01, seed=42)
        flips = injector.advance(100_000)
        # Expect ~1000 strikes; allow generous statistical slack.
        assert 700 < flips < 1300

    def test_determinism_across_runs(self):
        counts = []
        for _ in range(2):
            cache = make_cache()
            for i in range(64):
                cache.access(i * 64, True, i)
            injector = FaultInjector(cache, 0.01, seed=7)
            counts.append(injector.advance(50_000))
        assert counts[0] == counts[1]

    def test_advance_is_monotonic(self):
        cache = make_cache()
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.5, seed=1)
        a = injector.advance(100)
        b = injector.advance(100)  # same time: no new strikes
        assert b == 0 or a >= 0


class TestRecoveryPaths:
    def test_basep_clean_block_recovers_from_l2(self):
        cache = make_cache("BaseP")
        cache.access(0, False, 0)  # clean fill
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        outcome = cache.access(0, False, 1)
        assert outcome.latency > 1  # refetch charged
        assert cache.stats.load_errors_recovered_l2 == 1
        assert cache.stats.load_errors_unrecoverable == 0

    def test_basep_dirty_block_is_unrecoverable(self):
        cache = make_cache("BaseP")
        cache.access(0, True, 0)  # dirty
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(0, False, 1)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_baseecc_corrects_single_bit_in_dirty_block(self):
        cache = make_cache("BaseECC")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(0, False, 1)
        assert cache.stats.load_errors_corrected_ecc == 1
        assert cache.stats.load_errors_unrecoverable == 0

    def test_baseecc_double_bit_dirty_is_unrecoverable(self):
        cache = make_cache("BaseECC")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        injector.force_fault(site_of(cache, 0, word=0, bit=9))
        cache.access(0, False, 1)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_icr_recovers_dirty_block_from_replica(self):
        """The paper's headline reliability win: parity + replica recovery."""
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)  # dirty + replicated
        assert cache.probe(0).has_replica
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        outcome = cache.access(0, False, 1)
        assert cache.stats.load_errors_recovered_replica == 1
        assert cache.stats.load_errors_unrecoverable == 0
        assert outcome.latency == 2  # one extra cycle for the replica

    def test_icr_scrubs_primary_after_replica_recovery(self):
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(0, False, 1)
        # Second load sees no error.
        cache.access(0, False, 2)
        assert cache.stats.load_errors_detected == 1

    def test_icr_unreplicated_dirty_still_unrecoverable(self):
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)
        primary = cache.probe(0)
        cache.evict(primary.replica_refs[0])
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(0, False, 1)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_corrupted_replica_falls_back(self):
        """Error in both primary and replica word: behave like unreplicated."""
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)
        primary = cache.probe(0)
        replica = primary.replica_refs[0]
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        replica.words[0]._cell.flip_data_bit(5)
        cache.access(0, False, 1)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_silent_corruption_detected_by_golden_compare(self):
        """Two flips in one byte escape parity; the simulator still sees it."""
        cache = make_cache("BaseP")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=0))
        injector.force_fault(site_of(cache, 0, word=0, bit=1))
        cache.access(0, False, 1)
        assert cache.stats.silent_corruptions == 1
        assert cache.stats.load_errors_detected == 0

    def test_error_in_untouched_word_not_seen(self):
        cache = make_cache("BaseP")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=5, bit=3))
        cache.access(0, False, 1)  # loads word 0
        assert cache.stats.load_errors_detected == 0
