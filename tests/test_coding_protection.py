"""Tests for the protection-policy layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.protection import (
    ProtectedWord,
    ProtectionKind,
    protection_energy_fraction,
)

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestProtectionKind:
    def test_parity_loads_are_single_cycle(self):
        assert ProtectionKind.PARITY.load_hit_cycles == 1

    def test_ecc_loads_are_two_cycles(self):
        assert ProtectionKind.ECC.load_hit_cycles == 2

    def test_only_ecc_corrects(self):
        assert not ProtectionKind.PARITY.can_correct
        assert ProtectionKind.ECC.can_correct

    def test_storage_overhead_is_12_5_percent(self):
        assert ProtectionKind.PARITY.storage_overhead == 0.125
        assert ProtectionKind.ECC.storage_overhead == 0.125


class TestProtectedWord:
    @pytest.mark.parametrize("kind", list(ProtectionKind))
    def test_clean_read(self, kind):
        cell = ProtectedWord(kind, 1234)
        outcome = cell.read()
        assert not outcome.error_detected
        assert outcome.data == 1234

    def test_parity_detects_but_does_not_correct(self):
        cell = ProtectedWord(ProtectionKind.PARITY, 99)
        cell.flip_data_bit(7)
        outcome = cell.read()
        assert outcome.error_detected
        assert not outcome.corrected

    def test_ecc_detects_and_corrects(self):
        cell = ProtectedWord(ProtectionKind.ECC, 99)
        cell.flip_data_bit(7)
        outcome = cell.read()
        assert outcome.error_detected
        assert outcome.corrected
        assert outcome.data == 99

    @pytest.mark.parametrize("kind", list(ProtectionKind))
    @given(word=WORDS)
    def test_write_roundtrip(self, kind, word):
        cell = ProtectedWord(kind, 0)
        cell.write(word)
        assert cell.raw_data == word

    @pytest.mark.parametrize("kind", list(ProtectionKind))
    def test_every_data_bit_flippable(self, kind):
        for bit in range(64):
            cell = ProtectedWord(kind, 0)
            cell.flip_data_bit(bit)
            assert cell.raw_data == (1 << bit)
            assert cell.read().error_detected


class TestEnergyFractions:
    def test_defaults_match_figure_17b(self):
        assert protection_energy_fraction(ProtectionKind.PARITY) == 0.15
        assert protection_energy_fraction(ProtectionKind.ECC) == 0.30

    def test_figure_17c_ratios(self):
        assert protection_energy_fraction(
            ProtectionKind.PARITY, parity_fraction=0.10
        ) == 0.10

    def test_ecc_at_least_as_costly_as_parity(self):
        # Bertozzi et al.: ECC is 2-3x the parity computation energy.
        p = protection_energy_fraction(ProtectionKind.PARITY)
        e = protection_energy_fraction(ProtectionKind.ECC)
        assert e >= 2 * p
