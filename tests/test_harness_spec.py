"""Tests for the ExperimentSpec API and the SimulationResult round-trip.

The load-bearing properties:

* the spec form and the legacy keyword form of :func:`run_experiment`
  produce bit-identical results and share one cache identity, so the
  keyword shim can be removed without invalidating anyone's cache;
* ``SimulationResult.to_dict`` / ``from_dict`` is a lossless JSON-safe
  round-trip — it is the one serialization used by the result cache,
  campaign checkpoints and JSONL trial logs.
"""

import json

import pytest

from repro.harness.cache import job_key
from repro.harness.experiment import SimulationResult, run_experiment
from repro.harness.spec import RUN_DEFAULTS, ExperimentSpec

N = 4_000


class TestSpecConstruction:
    def test_scheme_kwargs_canonicalized(self):
        a = ExperimentSpec(
            "gzip", "ICR-P-PS(S)",
            scheme_kwargs={"decay_window": 1000, "replicate_into_invalid": True},
        )
        b = ExperimentSpec(
            "gzip", "ICR-P-PS(S)",
            scheme_kwargs=(
                ("replicate_into_invalid", True), ("decay_window", 1000),
            ),
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_list_values_frozen_hashable(self):
        spec = ExperimentSpec(
            "gzip", "ICR-P-PS(S)", scheme_kwargs={"distances": [1, 2, 4]}
        )
        assert dict(spec.scheme_kwargs)["distances"] == (1, 2, 4)
        hash(spec)  # must not raise

    def test_from_kwargs_splits_fields(self):
        spec = ExperimentSpec.from_kwargs(
            "gzip", "ICR-P-PS(S)", n_instructions=N, decay_window=1000
        )
        assert spec.n_instructions == N
        assert dict(spec.scheme_kwargs) == {"decay_window": 1000}

    def test_run_kwargs_round_trip(self):
        spec = ExperimentSpec.from_kwargs(
            "vpr", "ICR-P-PS(LS)",
            n_instructions=N, error_rate=0.01, error_seed=7, decay_window=500,
        )
        again = ExperimentSpec.from_kwargs(
            spec.benchmark, spec.scheme, **spec.run_kwargs()
        )
        assert again == spec

    def test_replace_and_with_seed(self):
        spec = ExperimentSpec("gzip", "BaseP")
        assert spec.with_seed(99).error_seed == 99
        assert spec.with_seed(99).replace(error_seed=spec.error_seed) == spec

    def test_defaults_are_the_cache_defaults(self):
        # RUN_DEFAULTS (what the cache normalizes omitted kwargs against)
        # must be exactly the spec's own field defaults.
        spec = ExperimentSpec("gzip", "BaseP")
        for name, default in RUN_DEFAULTS.items():
            assert getattr(spec, name) == default

    def test_label_and_names(self):
        spec = ExperimentSpec("gzip", "ICR-P-PS(S)")
        assert spec.benchmark_name == "gzip"
        assert spec.scheme_name == "ICR-P-PS(S)"
        assert spec.label == "gzip/ICR-P-PS(S)"


class TestCacheKeyIdentity:
    def test_key_matches_job_key(self):
        spec = ExperimentSpec.from_kwargs(
            "gzip", "ICR-P-PS(S)", n_instructions=N, decay_window=1000
        )
        assert spec.key() == job_key(spec.benchmark, spec.scheme, spec.run_kwargs())

    def test_explicit_defaults_do_not_change_the_key(self):
        bare = ExperimentSpec("gzip", "BaseP", n_instructions=N)
        explicit = ExperimentSpec.from_kwargs(
            "gzip", "BaseP",
            n_instructions=N, error_rate=0.0, error_seed=12345, trace_seed=0,
        )
        assert explicit.key() == bare.key()

    def test_different_seeds_different_keys(self):
        spec = ExperimentSpec("gzip", "BaseP", error_rate=0.01)
        assert spec.key() != spec.with_seed(7).key()


class TestRunExperimentForms:
    def test_from_kwargs_form_identical(self):
        spec = ExperimentSpec("gzip", "ICR-P-PS(S)", n_instructions=N)
        via_spec = run_experiment(spec)
        via_kwargs = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "ICR-P-PS(S)", n_instructions=N)
        )
        assert via_spec == via_kwargs

    def test_keyword_form_removed(self):
        # The deprecated run_experiment(benchmark, scheme, **kwargs)
        # shim is gone: a spec is the sole entry point.
        with pytest.raises(TypeError):
            run_experiment("gzip", "BaseP", n_instructions=N)
        with pytest.raises(TypeError, match="ExperimentSpec"):
            run_experiment("gzip")


class TestResultRoundTrip:
    def _round_trip(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        return SimulationResult.from_dict(payload)

    def test_plain_run(self):
        result = run_experiment(ExperimentSpec("gzip", "BaseP", n_instructions=N))
        assert self._round_trip(result) == result

    def test_full_payload_run(self):
        # Exercise the optional fields: vulnerability report + iL1 stats.
        spec = ExperimentSpec(
            "gzip", "ICR-P-PS(S)",
            n_instructions=N,
            error_rate=0.01,
            icache_error_rate=0.001,
            measure_vulnerability=True,
        )
        result = run_experiment(spec)
        assert result.vulnerability is not None
        assert result.l1i is not None
        back = self._round_trip(result)
        assert back == result
        assert back.vulnerability == result.vulnerability
        assert back.l1i == result.l1i

    def test_unknown_format_rejected(self):
        result = run_experiment(ExperimentSpec("gzip", "BaseP", n_instructions=N))
        payload = result.to_dict()
        payload["format"] = 999
        with pytest.raises(ValueError, match="format"):
            SimulationResult.from_dict(payload)


class TestWireEnumHardening:
    """The spec wire form is untrusted input (the job server feeds it
    straight off the network), so the ``__enum__`` tag must reject
    anything that is not an enum type inside this package — it is not a
    generic import-and-call gadget."""

    def _payload(self, tag, value):
        base = ExperimentSpec("gzip", "ICR-P-PS(S)").to_dict()
        base["scheme_kwargs"] = {"victim_policy": {"__enum__": tag, "value": value}}
        return base

    def test_module_outside_package_rejected(self):
        payload = self._payload("os:system", "true")
        with pytest.raises(ValueError, match="outside"):
            ExperimentSpec.from_dict(payload)

    def test_package_prefix_spoof_rejected(self):
        payload = self._payload("reprox.evil:Thing", 1)
        with pytest.raises(ValueError, match="outside"):
            ExperimentSpec.from_dict(payload)

    def test_non_enum_target_rejected(self):
        payload = self._payload("repro.harness.spec:ExperimentSpec", "x")
        with pytest.raises(ValueError, match="not an enum"):
            ExperimentSpec.from_dict(payload)

    def test_unresolvable_target_rejected(self):
        payload = self._payload("repro.harness.spec:NoSuchThing", 1)
        with pytest.raises(ValueError, match="does not resolve"):
            ExperimentSpec.from_dict(payload)

    def test_malformed_tag_rejected(self):
        payload = self._payload("no-colon-here", 1)
        with pytest.raises(ValueError, match="malformed"):
            ExperimentSpec.from_dict(payload)
