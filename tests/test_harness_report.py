"""Tests for table rendering helpers."""

from repro.harness.report import format_table, percent, relative


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.125]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert set(lines[1]) == {"-"}
        assert "2.500" in lines[2]
        assert "xyz" in lines[3]

    def test_columns_align(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[1]) == len("a-much-longer-cell")

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0] == "a"


class TestPercent:
    def test_formats(self):
        assert percent(0.036) == "3.6%"
        assert percent(1.0) == "100.0%"


class TestRelative:
    def test_positive(self):
        assert relative(1.036) == "+3.6%"

    def test_negative(self):
        assert relative(0.964) == "-3.6%"

    def test_custom_base(self):
        assert relative(2.0, base=2.0) == "+0.0%"
