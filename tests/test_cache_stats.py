"""Tests for the statistics containers and derived metrics."""

import pytest

from repro.cache.stats import CacheStats, HierarchyStats


class TestDerivedMetrics:
    def test_miss_rate(self):
        s = CacheStats(loads=6, stores=4, load_misses=2, store_misses=1)
        assert s.miss_rate == pytest.approx(0.3)

    def test_load_miss_rate(self):
        s = CacheStats(loads=10, load_misses=4)
        assert s.load_miss_rate == pytest.approx(0.4)

    def test_replication_ability(self):
        s = CacheStats(replication_attempts=8, replication_successes=2)
        assert s.replication_ability == pytest.approx(0.25)

    def test_loads_with_replica(self):
        s = CacheStats(load_hits=10, load_hits_with_replica=7)
        assert s.loads_with_replica == pytest.approx(0.7)

    def test_unrecoverable_fraction(self):
        s = CacheStats(loads=1000, load_errors_unrecoverable=3)
        assert s.unrecoverable_load_fraction == pytest.approx(0.003)

    def test_zero_denominators_are_zero(self):
        s = CacheStats()
        assert s.miss_rate == 0.0
        assert s.load_miss_rate == 0.0
        assert s.replication_ability == 0.0
        assert s.second_replica_ability == 0.0
        assert s.loads_with_replica == 0.0
        assert s.unrecoverable_load_fraction == 0.0

    def test_accesses_hits_misses(self):
        s = CacheStats(
            loads=5, stores=3, load_hits=4, load_misses=1,
            store_hits=2, store_misses=1,
        )
        assert s.accesses == 8
        assert s.hits == 6
        assert s.misses == 2


class TestMergeAndSnapshot:
    def test_merge_adds_counters(self):
        a = CacheStats(loads=1, parity_checks=2)
        b = CacheStats(loads=3, parity_checks=4, writebacks=1)
        a.merge(b)
        assert a.loads == 4
        assert a.parity_checks == 6
        assert a.writebacks == 1

    def test_snapshot_is_plain_dict(self):
        s = CacheStats(loads=2)
        snap = s.snapshot()
        assert snap["loads"] == 2
        snap["loads"] = 99
        assert s.loads == 2  # copy, not a view

    def test_snapshot_covers_every_field(self):
        import dataclasses

        s = CacheStats()
        assert set(s.snapshot()) == {f.name for f in dataclasses.fields(s)}


class TestHierarchyStats:
    def test_default_levels_independent(self):
        h = HierarchyStats()
        h.l1d.loads = 5
        assert h.l2.loads == 0
        assert h.l1i.loads == 0
        assert h.memory_accesses == 0
