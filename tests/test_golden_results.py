"""Golden-number regression tests.

Pins the headline counters — cycles, instructions, dL1 load/store misses —
for three canonical configurations against checked-in JSON files under
``tests/golden/``.  Any simulator change that shifts these numbers fails
here first, with a readable diff of exactly which counter moved.

To re-pin after an *intentional* behavior change::

    PYTHONPATH=src python -m pytest tests/test_golden_results.py --update-golden

then inspect ``git diff tests/golden/`` and commit the new files together
with the change that caused them.
"""

import json
import pathlib

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

N = 8_000

#: name -> (benchmark, scheme, extra kwargs).  BaseP is the unprotected
#: baseline, ICR-P-PS(S) the vertical-replication scheme, ICR-P-PS(LS)
#: the load-store variant (paper Sections 3-4).
CONFIGS = {
    "basep": ("gzip", "BaseP", {}),
    "icr_s_vertical": ("gzip", "ICR-P-PS(S)", {}),
    "icr_ls": ("gzip", "ICR-P-PS(LS)", {}),
}


def _snapshot(result):
    return {
        "benchmark": result.benchmark,
        "scheme": result.scheme,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "dl1_load_misses": result.dl1["load_misses"],
        "dl1_store_misses": result.dl1["store_misses"],
    }


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_golden(name, update_golden):
    benchmark, scheme, kwargs = CONFIGS[name]
    result = run_experiment(
        ExperimentSpec.from_kwargs(benchmark, scheme, n_instructions=N, **kwargs)
    )
    got = _snapshot(result)

    path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2) + "\n")
        pytest.skip(f"regenerated {path}")

    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        "pytest tests/test_golden_results.py --update-golden"
    )
    expected = json.loads(path.read_text())
    assert got == expected
