"""Tests for multi-seed statistics."""

import pytest

from repro.harness.stats import (
    MetricSummary,
    compare_with_seeds,
    run_with_seeds,
    significant_difference,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.n == 3

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.sem == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci95_brackets_mean(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        low, high = s.ci95()
        assert low < s.mean < high


class TestSignificance:
    def test_clearly_different(self):
        a = MetricSummary(mean=10.0, std=0.1, minimum=9.9, maximum=10.1, n=10)
        b = MetricSummary(mean=20.0, std=0.1, minimum=19.9, maximum=20.1, n=10)
        assert significant_difference(a, b)

    def test_overlapping_not_significant(self):
        a = MetricSummary(mean=10.0, std=5.0, minimum=5, maximum=15, n=3)
        b = MetricSummary(mean=10.5, std=5.0, minimum=5, maximum=16, n=3)
        assert not significant_difference(a, b)

    def test_zero_variance_exact_compare(self):
        a = MetricSummary(mean=1.0, std=0.0, minimum=1, maximum=1, n=1)
        b = MetricSummary(mean=2.0, std=0.0, minimum=2, maximum=2, n=1)
        assert significant_difference(a, b)
        assert not significant_difference(a, a)


class TestRunWithSeeds:
    def test_produces_all_metrics(self):
        run = run_with_seeds("gzip", "BaseP", n_seeds=2, n_instructions=8_000)
        assert set(run.metrics) == {
            "cycles", "cpi", "miss_rate", "replication_ability",
            "loads_with_replica",
        }
        assert run["cycles"].n == 2

    def test_seeds_vary_the_trace(self):
        run = run_with_seeds("gzip", "BaseP", n_seeds=3, n_instructions=8_000)
        assert run["cycles"].std > 0  # different seeds, different cycles

    def test_zero_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_with_seeds("gzip", "BaseP", n_seeds=0)

    def test_ecc_slowdown_is_significant(self):
        """The core performance claim survives seed noise."""
        a, b, significant = compare_with_seeds(
            "gzip", "BaseP", "BaseECC", n_seeds=3, n_instructions=15_000
        )
        assert b.mean > a.mean
        assert significant
