"""Tests for the coalescing write buffer (Section 5.8 substrate)."""

import pytest

from repro.cache.write_buffer import CoalescingWriteBuffer


@pytest.fixture
def wb():
    return CoalescingWriteBuffer(entries=4, drain_cycles=6)


class TestBasicOperation:
    def test_push_into_empty_buffer_never_stalls(self, wb):
        assert wb.push(1, now=0) == 0

    def test_occupancy_counts_undrained_entries(self, wb):
        wb.push(1, 0)
        wb.push(2, 0)
        assert wb.occupancy(0) == 2

    def test_entries_drain_over_time(self, wb):
        wb.push(1, 0)
        assert wb.occupancy(5) == 1
        assert wb.occupancy(6) == 0

    def test_drain_serializes_on_port(self, wb):
        # Two entries pushed together: second finishes at 12, not 6.
        wb.push(1, 0)
        wb.push(2, 0)
        assert wb.occupancy(6) == 1
        assert wb.occupancy(12) == 0


class TestCoalescing:
    def test_same_block_coalesces(self, wb):
        wb.push(7, 0)
        stall = wb.push(7, 1)
        assert stall == 0
        assert wb.stats.coalesced == 1
        assert wb.occupancy(1) == 1

    def test_coalesced_stores_do_not_allocate(self, wb):
        for _ in range(10):
            wb.push(7, 0)
        assert wb.occupancy(0) == 1
        assert wb.stats.enqueues == 1


class TestFullBufferStalls:
    def test_full_buffer_stalls_until_oldest_drains(self, wb):
        for block in range(4):
            wb.push(block, 0)
        stall = wb.push(99, 0)
        # Oldest entry drains at cycle 6.
        assert stall == 6
        assert wb.stats.full_stalls == 1
        assert wb.stats.stall_cycles == 6

    def test_no_stall_when_pushed_after_drain(self, wb):
        for block in range(4):
            wb.push(block, 0)
        assert wb.push(99, now=30) == 0

    def test_burst_stall_accumulates(self):
        wb = CoalescingWriteBuffer(entries=2, drain_cycles=10)
        stalls = [wb.push(i, 0) for i in range(6)]
        assert stalls[0] == 0 and stalls[1] == 0
        assert all(s > 0 for s in stalls[2:])
        # Later pushes wait longer (the port serializes at 10 cycles each).
        assert stalls[3] >= stalls[2]


class TestValidation:
    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            CoalescingWriteBuffer(entries=0)
