"""Tests for the parallel experiment runner.

The load-bearing property is *serial/parallel equivalence*: a
:class:`ParallelRunner` must return results field-for-field identical
to direct :func:`run_experiment` calls, for any worker count, including
under seeded fault injection — worker scheduling must never leak into
the simulation.
"""

import signal

import pytest

from repro.harness.cache import ResultCache
from repro.harness.experiment import run_experiment
from repro.harness.runner import (
    Job,
    ParallelRunner,
    RunnerError,
    RunnerStats,
)
from repro.harness.spec import ExperimentSpec

#: A small (benchmark, scheme, extra-kwargs) grid exercising base, S and
#: LS replication plus a non-default seed.
GRID = [
    ("gzip", "BaseP", {}),
    ("gzip", "ICR-P-PS(S)", {}),
    ("vpr", "ICR-P-PS(LS)", {"decay_window": 1000}),
    ("vpr", "BaseECC", {"trace_seed": 3}),
]
N = 4_000


def _jobs(extra=None):
    return [
        Job(bench, scheme, dict(n_instructions=N, **kwargs, **(extra or {})))
        for bench, scheme, kwargs in GRID
    ]


def _serial(extra=None):
    return [
        run_experiment(
            ExperimentSpec.from_kwargs(
                bench, scheme, n_instructions=N, **kwargs, **(extra or {})
            )
        )
        for bench, scheme, kwargs in GRID
    ]


class TestSerialParallelEquivalence:
    def test_parallel_identical_to_serial(self):
        serial = _serial()
        parallel = ParallelRunner(jobs=2).run(_jobs())
        assert len(parallel) == len(serial)
        for expected, got in zip(serial, parallel):
            # Dataclass equality covers every field (pipeline, dl1
            # counters, energy, ...); spot-check the headline numbers
            # so a failure names the culprit.
            assert got.cycles == expected.cycles
            assert got.dl1 == expected.dl1
            assert got.energy == expected.energy
            assert got == expected

    def test_equivalence_under_error_injection(self):
        # Seeded injection must not depend on worker scheduling.
        extra = {"error_rate": 0.01, "error_seed": 7}
        serial = _serial(extra)
        parallel = ParallelRunner(jobs=3).run(_jobs(extra))
        for expected, got in zip(serial, parallel):
            assert got.dl1["errors_injected"] == expected.dl1["errors_injected"]
            assert got == expected
        assert any(r.dl1["errors_injected"] > 0 for r in parallel)

    def test_result_order_matches_job_order(self):
        results = ParallelRunner(jobs=2).run(_jobs())
        assert [r.benchmark for r in results] == [b for b, _, _ in GRID]
        assert [r.scheme for r in results] == [
            "BaseP", "ICR-P-PS(S)", "ICR-P-PS(LS)", "BaseECC"
        ]

    def test_run_one_matches_run_experiment(self):
        direct = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "ICR-P-PS(S)", n_instructions=N)
        )
        via_runner = ParallelRunner(jobs=1).run_one(
            "gzip", "ICR-P-PS(S)", n_instructions=N
        )
        assert via_runner == direct


class TestInProcessFallback:
    def test_jobs1_never_spawns_a_pool(self, monkeypatch):
        import repro.harness.runner as runner_mod

        def _forbidden(*args, **kwargs):
            raise AssertionError("jobs=1 must stay in-process")

        monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", _forbidden)
        results = ParallelRunner(jobs=1).run(_jobs())
        assert [r.cycles for r in results] == [r.cycles for r in _serial()]

    def test_single_pending_job_stays_in_process(self, monkeypatch):
        import repro.harness.runner as runner_mod

        monkeypatch.setattr(
            runner_mod,
            "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pool used")),
        )
        job = Job("gzip", "BaseP", dict(n_instructions=N))
        results = ParallelRunner(jobs=8).run([job])
        assert results[0].scheme == "BaseP"


class TestRetryAndFailure:
    # Unknown scheme *names* are rejected by the registry before a job
    # ever reaches a worker, so a bogus ICR knob (caught only when the
    # worker builds the config) is the run-time failure vector here.

    def test_failing_job_raises_after_retry(self):
        runner = ParallelRunner(jobs=1)
        bad = Job("gzip", "ICR-P-PS(S)", dict(n_instructions=N, nosuch_knob=1))
        with pytest.raises(RunnerError, match="nosuch"):
            runner.run([bad])
        assert runner.stats.retries == 1
        assert runner.stats.failures == 1

    def test_pool_failure_retried_in_parent(self):
        runner = ParallelRunner(jobs=2)
        jobs = [
            Job("gzip", "BaseP", dict(n_instructions=N)),
            Job("gzip", "ICR-P-PS(S)", dict(n_instructions=N, nosuch_knob=1)),
        ]
        with pytest.raises(RunnerError):
            runner.run(jobs)
        assert runner.stats.retries >= 1

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs POSIX interval timers"
    )
    def test_timeout_enforced(self):
        runner = ParallelRunner(jobs=1, timeout=0.005)
        with pytest.raises(RunnerError, match="exceeded"):
            runner.run([Job("gzip", "BaseP", dict(n_instructions=2_000_000))])
        assert runner.stats.failures == 1


class TestCachingBehavior:
    def test_disk_cache_round_trip(self, tmp_path):
        first = ParallelRunner(jobs=2, cache=ResultCache(tmp_path))
        a = first.run(_jobs())
        assert first.stats.simulated == len(GRID)

        second = ParallelRunner(jobs=2, cache=ResultCache(tmp_path))
        b = second.run(_jobs())
        assert second.stats.simulated == 0
        assert second.stats.cache_hits == len(GRID)
        assert a == b

    def test_memo_serves_repeats_without_disk(self):
        runner = ParallelRunner(jobs=1)  # no disk cache at all
        first = runner.run(_jobs())
        second = runner.run(_jobs())
        assert first == second
        assert runner.stats.simulated == len(GRID)
        assert runner.stats.cache_hits == len(GRID)

    def test_duplicate_jobs_simulated_once(self):
        job = Job("gzip", "BaseP", dict(n_instructions=N))
        runner = ParallelRunner(jobs=1)
        results = runner.run([job, Job("gzip", "BaseP", dict(n_instructions=N))])
        assert runner.stats.simulated == 1
        assert results[0] == results[1]


class TestRunnerStats:
    def test_summary_mentions_every_headline_metric(self):
        stats = RunnerStats(jobs=10, cache_hits=9, simulated=1, elapsed=2.0)
        line = stats.summary()
        assert "10 jobs" in line
        assert "9 cache hits (90.0%)" in line
        assert "sims/s" in line

    def test_rates_guard_division_by_zero(self):
        stats = RunnerStats()
        assert stats.hit_rate == 0.0
        assert stats.sims_per_sec == 0.0

    def test_run_grid_keys(self):
        runner = ParallelRunner(jobs=1)
        grid = runner.run_grid(["gzip"], ["BaseP", "BaseECC"], n_instructions=N)
        assert set(grid) == {("gzip", "BaseP"), ("gzip", "BaseECC")}
