"""Tests for the vulnerability census and MTTF estimation."""

import pytest

from repro.cache.block import CacheBlock
from repro.coding.protection import ProtectionKind
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec
from repro.reliability import (
    ExposureClass,
    VulnerabilityMonitor,
    classify_block,
    fit_consumption_factor,
    predicted_unrecoverable_rate,
)


def block(*, dirty=False, replica=False, has_replica=False, ecc=False):
    b = CacheBlock()
    b.fill(0x1, 0, is_replica=replica, dirty=dirty)
    if has_replica:
        b.replica_refs.append(CacheBlock())
    b.protection = ProtectionKind.ECC if ecc else ProtectionKind.PARITY
    return b


class TestClassification:
    def test_ecc_always_safe(self):
        assert classify_block(block(dirty=True, ecc=True)) is ExposureClass.SAFE_ECC

    def test_replicated_dirty_is_safe(self):
        b = block(dirty=True, has_replica=True)
        assert classify_block(b) is ExposureClass.SAFE_REPLICA

    def test_replica_line_itself_is_safe(self):
        assert classify_block(block(replica=True)) is ExposureClass.SAFE_REPLICA

    def test_clean_parity_is_refetchable(self):
        assert classify_block(block()) is ExposureClass.SAFE_CLEAN

    def test_dirty_parity_unreplicated_is_vulnerable(self):
        assert classify_block(block(dirty=True)) is ExposureClass.VULNERABLE


class TestMonitor:
    def test_census_integrates_over_time(self):
        cache = ICRCache(make_config("BaseP"))
        monitor = VulnerabilityMonitor(cache, sample_period=10)
        cache.access(0, True, 0)  # dirty block
        cache.access(0, True, 1000)
        cache.access(0, True, 2000)
        report = monitor.finish(3000)
        assert report.observed_cycles == 3000
        assert report.block_cycles[ExposureClass.VULNERABLE] > 0

    def test_vulnerable_fraction_bounds(self):
        cache = ICRCache(make_config("BaseP"))
        monitor = VulnerabilityMonitor(cache, sample_period=10)
        for i in range(100):
            cache.access(i * 64, i % 2 == 0, i * 50)
        report = monitor.finish(100 * 50)
        assert 0.0 <= report.vulnerable_fraction <= 1.0

    def test_invalid_period_rejected(self):
        cache = ICRCache(make_config("BaseP"))
        with pytest.raises(ValueError):
            VulnerabilityMonitor(cache, sample_period=0)

    def test_empty_run_reports_zero(self):
        cache = ICRCache(make_config("BaseP"))
        monitor = VulnerabilityMonitor(cache)
        report = monitor.finish(0)
        assert report.vulnerable_fraction == 0.0
        assert report.total_block_cycles == 0.0


class TestSchemeOrdering:
    """The analytical census must reproduce the Figure 14 ordering."""

    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for scheme, kw in (
            ("BaseP", {}),
            ("ICR-P-PS(S)", dict(decay_window=1000)),
            ("BaseECC", {}),
        ):
            r = run_experiment(ExperimentSpec.from_kwargs(
                "vortex", scheme, n_instructions=30_000,
                measure_vulnerability=True, **kw,
            ))
            out[scheme] = r.vulnerability
        return out

    def test_icr_less_vulnerable_than_basep(self, reports):
        assert (
            reports["ICR-P-PS(S)"].vulnerable_fraction
            < reports["BaseP"].vulnerable_fraction
        )

    def test_ecc_never_vulnerable_to_single_bits(self, reports):
        assert reports["BaseECC"].vulnerable_fraction == 0.0

    def test_replica_exposure_only_in_icr(self, reports):
        assert reports["ICR-P-PS(S)"].fraction(ExposureClass.SAFE_REPLICA) > 0.1
        assert reports["BaseP"].fraction(ExposureClass.SAFE_REPLICA) == 0.0


class TestMTTF:
    def test_rate_scales_with_probability(self):
        cache = ICRCache(make_config("BaseP"))
        monitor = VulnerabilityMonitor(cache, sample_period=10)
        cache.access(0, True, 0)
        report = monitor.finish(1000)
        slow = predicted_unrecoverable_rate(report, 1e-6)
        fast = predicted_unrecoverable_rate(report, 1e-3)
        assert fast.fatal_rate_per_cycle == pytest.approx(
            slow.fatal_rate_per_cycle * 1000
        )
        assert slow.mttf_cycles > fast.mttf_cycles

    def test_zero_vulnerability_means_infinite_mttf(self):
        cache = ICRCache(make_config("BaseECC"))
        monitor = VulnerabilityMonitor(cache, sample_period=10)
        cache.access(0, True, 0)
        report = monitor.finish(1000)
        est = predicted_unrecoverable_rate(report, 1e-3)
        assert est.mttf_cycles == float("inf")

    def test_mttf_seconds_uses_clock(self):
        cache = ICRCache(make_config("BaseP"))
        monitor = VulnerabilityMonitor(cache, sample_period=10)
        cache.access(0, True, 0)
        report = monitor.finish(1000)
        est = predicted_unrecoverable_rate(report, 1e-3)
        assert est.mttf_seconds(1e9) == pytest.approx(est.mttf_cycles / 1e9)

    def test_negative_probability_rejected(self):
        cache = ICRCache(make_config("BaseP"))
        monitor = VulnerabilityMonitor(cache, sample_period=10)
        report = monitor.finish(100)
        with pytest.raises(ValueError):
            predicted_unrecoverable_rate(report, -0.1)


class TestConsumptionFactor:
    def test_bounds(self):
        assert fit_consumption_factor(
            errors_injected=100, unrecoverable=10, vulnerable_fraction=0.5
        ) == pytest.approx(0.2)
        assert fit_consumption_factor(
            errors_injected=0, unrecoverable=0, vulnerable_fraction=0.5
        ) == 0.0
        assert (
            fit_consumption_factor(
                errors_injected=10, unrecoverable=100, vulnerable_fraction=0.1
            )
            == 1.0
        )

    def test_analytic_view_consistent_with_injection(self):
        """Cross-validation: injected unrecoverables stay within the
        analytic upper bound (consumption factor <= 1)."""
        r = run_experiment(ExperimentSpec.from_kwargs(
            "vortex",
            "BaseP",
            n_instructions=30_000,
            error_rate=1e-2,
            measure_vulnerability=True,
        ))
        factor = fit_consumption_factor(
            errors_injected=r.dl1["errors_injected"],
            unrecoverable=r.dl1["load_errors_unrecoverable"],
            vulnerable_fraction=r.vulnerability.vulnerable_fraction,
        )
        assert 0.0 <= factor <= 1.0
        assert r.dl1["load_errors_unrecoverable"] <= r.dl1["errors_injected"]
