"""The ``repro.schemes`` entry-point group: external scheme discovery.

External distributions advertise schemes via ``importlib.metadata``
entry points; these tests fake the metadata layer (no installation
needed) and pin the three accepted shapes — a ``SchemeEntry`` object, a
registration callable, a module import — plus the failure contract: a
broken plugin warns and is skipped, and unknown-name errors advertise
the group.
"""

import dataclasses
import importlib.metadata

import pytest

from repro.coding.protection import ProtectionKind
from repro.core import registry
from repro.core.registry import (
    ENTRY_POINT_GROUP,
    SchemeEntry,
    SchemeInfo,
    UnknownSchemeError,
    load_entry_point_schemes,
    normalize_scheme_name,
    registered_schemes,
)


class _FakeEntryPoint:
    """Just enough of importlib.metadata.EntryPoint: name + load()."""

    def __init__(self, name, obj=None, error=None):
        self.name = name
        self._obj = obj
        self._error = error

    def load(self):
        if self._error is not None:
            raise self._error
        return self._obj


def _tiny_entry(name: str) -> SchemeEntry:
    from repro.core.icr_cache import ICRCache
    from repro.core.schemes import make_config

    info = SchemeInfo(
        name=name,
        kind="base",
        description="external test scheme",
        protection=ProtectionKind.PARITY,
        load_hit_latency=1,
        aliases=(name.lower() + "-alias",),
    )

    def build(**kwargs):
        config = dataclasses.replace(
            make_config("BaseP", **kwargs), name=name
        )
        return ICRCache(config)

    return SchemeEntry(info=info, build=build)


@pytest.fixture
def fake_entry_points(monkeypatch):
    """Install fake entry points; scrub any registrations afterwards."""
    installed: list[_FakeEntryPoint] = []

    def entry_points(*, group=None):
        return list(installed) if group == ENTRY_POINT_GROUP else []

    monkeypatch.setattr(importlib.metadata, "entry_points", entry_points)
    before = set(registered_schemes())
    yield installed
    for name in [n for n in registered_schemes() if n not in before]:
        entry = registry._REGISTRY.pop(name)
        for spelling in (name,) + entry.info.aliases:
            registry._LOOKUP.pop(registry._squash(spelling), None)


class TestLoading:
    def test_scheme_entry_object_registered_directly(self, fake_entry_points):
        fake_entry_points.append(
            _FakeEntryPoint("ext", _tiny_entry("Ext-Scheme"))
        )
        added = load_entry_point_schemes(force=True)
        assert added == ("Ext-Scheme",)
        assert normalize_scheme_name("ext-scheme-alias") == "Ext-Scheme"

    def test_registration_callable_invoked(self, fake_entry_points):
        def install():
            registry.register(_tiny_entry("Ext-Callable"))

        fake_entry_points.append(_FakeEntryPoint("ext", install))
        assert "Ext-Callable" in load_entry_point_schemes(force=True)

    def test_loaded_scheme_simulates_end_to_end(self, fake_entry_points):
        fake_entry_points.append(
            _FakeEntryPoint("ext", _tiny_entry("Ext-Runs"))
        )
        load_entry_point_schemes(force=True)
        from repro.harness.experiment import run_experiment
        from repro.harness.spec import ExperimentSpec

        result = run_experiment(
            ExperimentSpec("gzip", "Ext-Runs", n_instructions=5000)
        )
        assert result.scheme == "Ext-Runs"
        assert result.dl1["loads"] > 0

    def test_loads_at_most_once_unless_forced(self, fake_entry_points):
        fake_entry_points.append(
            _FakeEntryPoint("ext", _tiny_entry("Ext-Once"))
        )
        load_entry_point_schemes(force=True)
        fake_entry_points.append(
            _FakeEntryPoint("late", _tiny_entry("Ext-Late"))
        )
        assert load_entry_point_schemes() == ()  # already loaded
        assert "Ext-Late" in load_entry_point_schemes(force=True)


class TestFailureContract:
    def test_broken_plugin_warns_and_is_skipped(self, fake_entry_points):
        fake_entry_points.append(
            _FakeEntryPoint("broken", error=ImportError("no such module"))
        )
        fake_entry_points.append(
            _FakeEntryPoint("good", _tiny_entry("Ext-Good"))
        )
        with pytest.warns(RuntimeWarning, match="broken"):
            added = load_entry_point_schemes(force=True)
        assert "Ext-Good" in added

    def test_unknown_scheme_error_mentions_the_group(self):
        with pytest.raises(UnknownSchemeError, match="repro.schemes"):
            normalize_scheme_name("definitely-not-a-scheme")

    def test_resolution_retries_after_loading_plugins(
        self, fake_entry_points, monkeypatch
    ):
        monkeypatch.setattr(registry, "_entry_points_loaded", False)
        fake_entry_points.append(
            _FakeEntryPoint("ext", _tiny_entry("Ext-Lazy"))
        )
        # Never explicitly loaded: the failed lookup triggers the load.
        assert normalize_scheme_name("ext-lazy") == "Ext-Lazy"
