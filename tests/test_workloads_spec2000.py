"""Tests for the eight benchmark profiles."""

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec
from repro.workloads.spec2000 import BENCHMARKS, PROFILES, profile_for


class TestRoster:
    def test_eight_benchmarks(self):
        assert len(BENCHMARKS) == 8
        assert set(BENCHMARKS) == set(PROFILES)

    def test_paper_named_benchmarks_present(self):
        for name in ("gcc", "gzip", "mcf", "mesa", "vortex", "vpr"):
            assert name in BENCHMARKS

    def test_profile_for(self):
        assert profile_for("mcf").name == "mcf"
        with pytest.raises(ValueError):
            profile_for("specjbb")

    def test_profiles_have_distinct_seeds(self):
        seeds = [p.seed for p in PROFILES.values()]
        assert len(seeds) == len(set(seeds))

    def test_fp_benchmarks_use_fp(self):
        assert PROFILES["mesa"].fp_fraction > 0
        assert PROFILES["equake"].fp_fraction > 0
        assert PROFILES["gcc"].fp_fraction == 0


class TestCharacter:
    """Coarse behavioural checks; exact values live in EXPERIMENTS.md."""

    def test_mcf_has_worst_locality(self):
        results = {
            b: run_experiment(
                ExperimentSpec.from_kwargs(b, "BaseP", n_instructions=30_000)
            ).miss_rate
            for b in ("mcf", "gzip", "mesa")
        }
        assert results["mcf"] > 3 * results["gzip"]
        assert results["mcf"] > 3 * results["mesa"]

    def test_mesa_has_best_locality(self):
        mesa = run_experiment(
            ExperimentSpec.from_kwargs("mesa", "BaseP", n_instructions=30_000)
        )
        assert mesa.miss_rate < 0.03

    def test_vpr_mispredicts_more_than_mesa(self):
        vpr = run_experiment(
            ExperimentSpec.from_kwargs("vpr", "BaseP", n_instructions=30_000)
        )
        mesa = run_experiment(
            ExperimentSpec.from_kwargs("mesa", "BaseP", n_instructions=30_000)
        )
        assert vpr.pipeline.mispredict_rate > mesa.pipeline.mispredict_rate

    def test_all_benchmarks_runnable(self):
        for bench in BENCHMARKS:
            result = run_experiment(
                ExperimentSpec.from_kwargs(bench, "BaseP", n_instructions=5_000)
            )
            assert result.cycles > 0
            assert result.benchmark == bench
