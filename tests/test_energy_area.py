"""Tests for the storage-overhead / leakage model against paper numbers."""

import pytest

from repro.cache.set_assoc import CacheGeometry
from repro.energy.area import (
    LEAKAGE_NW_PER_KBIT,
    compare_reliability_areas,
    storage_breakdown,
)

DL1 = CacheGeometry(16 * 1024, 4, 64)


class TestStorageBreakdown:
    def test_parity_overhead_is_12_5_percent(self):
        """Paper Section 1: 'one bit parity per eight-bit data ... 12.5%'."""
        b = storage_breakdown(DL1, protected=True)
        assert b.protection_overhead == pytest.approx(0.125)

    def test_icr_metadata_near_paper_number(self):
        """Section 2: 2 bits/line = 0.39% for 64-byte lines; plus the
        replica flag bit (Section 3.1) gives ~0.59% total."""
        b = storage_breakdown(DL1, protected=True, icr=True)
        counters_only = (2 * 256) / b.data_bits
        assert counters_only == pytest.approx(0.0039, abs=2e-4)
        assert b.icr_overhead == pytest.approx(3 / (64 * 8), abs=1e-4)

    def test_data_bits_match_geometry(self):
        b = storage_breakdown(DL1)
        assert b.data_bits == 16 * 1024 * 8

    def test_unprotected_has_no_check_bits(self):
        b = storage_breakdown(DL1, protected=False)
        assert b.protection_bits == 0

    def test_leakage_proportional_to_bits(self):
        small = storage_breakdown(CacheGeometry(8 * 1024, 4, 64))
        large = storage_breakdown(CacheGeometry(32 * 1024, 4, 64))
        assert large.leakage_nw() > 3 * small.leakage_nw()
        assert small.leakage_nw() == pytest.approx(
            LEAKAGE_NW_PER_KBIT * small.total_bits / 1024.0
        )


class TestReliabilityAreaComparison:
    def test_icr_is_by_far_the_cheapest(self):
        rows = {c.option: c for c in compare_reliability_areas(DL1)}
        icr = rows["ICR (flag + decay counters)"]
        for name, row in rows.items():
            if name != icr.option:
                assert row.extra_bits > 10 * icr.extra_bits

    def test_icr_extra_under_one_percent(self):
        rows = {c.option: c for c in compare_reliability_areas(DL1)}
        assert rows["ICR (flag + decay counters)"].extra_fraction_of_dl1 < 0.01

    def test_dual_protection_doubles_check_storage(self):
        """Section 6: provisioning parity AND ECC 'doubles the space
        needed to store such auxiliary information'."""
        rows = {c.option: c for c in compare_reliability_areas(DL1)}
        base = storage_breakdown(DL1)
        assert rows["dual parity+ECC"].extra_bits == base.protection_bits

    def test_rcache_extra_scales_with_size(self):
        small = {c.option: c for c in compare_reliability_areas(DL1, rcache_bytes=1024)}
        large = {c.option: c for c in compare_reliability_areas(DL1, rcache_bytes=4096)}
        assert (
            large["R-Cache 4096B"].extra_bits > small["R-Cache 1024B"].extra_bits
        )

    def test_leakage_matches_bits(self):
        for row in compare_reliability_areas(DL1):
            assert row.extra_leakage_nw == pytest.approx(
                LEAKAGE_NW_PER_KBIT * row.extra_bits / 1024.0
            )
