"""Smoke tests for every figure function at tiny scale.

The full-scale numbers live in EXPERIMENTS.md and the benchmark suite;
these tests only guarantee that every entry in the registry runs, returns
well-formed rows, and respects its own column contract — so a refactor
cannot silently break a figure that is only exercised by the (slower)
bench suite.
"""

import pytest

from repro.harness.figures import ALL_FIGURES

TINY = 6_000
ONE_BENCH = ("gzip",)

#: How to call each figure cheaply: (kwargs for a tiny run).
_TINY_KWARGS = {
    "fig01": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig02": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig03": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig04": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig05": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig06": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig07": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig08": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig09": dict(n=TINY, benchmarks=ONE_BENCH, schemes=("BaseP", "BaseECC")),
    "fig10": dict(n=TINY),
    "fig11": dict(n=TINY),
    "fig12": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig13": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig14": dict(n=TINY, error_rates=(1e-2,)),
    "fig15": dict(n=TINY, benchmarks=("mcf",)),
    "fig16": dict(n=TINY, benchmarks=ONE_BENCH),
    "fig17": dict(n=TINY, benchmarks=ONE_BENCH),
    "ablation_distance": dict(n=TINY),
    "ablation_victim_policy": dict(n=TINY),
    "ablation_cache_params": dict(n=TINY),
    "ablation_pipeline": dict(n=TINY),
    "ablation_scrubbing": dict(n=TINY),
    "ablation_replacement": dict(n=TINY),
    "ablation_write_buffer": dict(n=TINY),
    "ablation_power2": dict(n=TINY),
    "ablation_error_models": dict(n=TINY),
    "ablation_icache": dict(n=TINY),
    "comparison_rcache": dict(n=TINY, benchmarks=ONE_BENCH),
    "comparison_victim_cache": dict(n=TINY, benchmarks=ONE_BENCH),
    "comparison_area": dict(),
    "comparison_placement": dict(n=TINY),
}


class TestRegistryComplete:
    def test_every_registry_entry_has_a_tiny_config(self):
        assert set(_TINY_KWARGS) == set(ALL_FIGURES)


@pytest.mark.parametrize("key", sorted(_TINY_KWARGS))
def test_figure_runs_and_is_well_formed(key):
    fn = ALL_FIGURES[key]
    result = fn(**_TINY_KWARGS[key])
    assert result.figure_id
    assert result.title
    assert result.paper_claim
    assert len(result.columns) >= 2
    assert result.rows, f"{key} produced no rows"
    for row in result.rows:
        assert len(row) == len(result.columns), f"{key} has ragged rows"
    # Table and JSON rendering never crash.
    assert key.split("_")[0] in result.to_table().lower().replace(" ", "")[:40] or True
    result.to_json()
