"""Scale note of DESIGN.md: metrics are stable at the default trace length.

The paper simulates 500M instructions; we use far shorter traces.  These
tests demonstrate that the metrics the figures report have converged well
below the default length — doubling the trace moves them only marginally.
"""

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec


class TestMetricConvergence:
    @pytest.mark.parametrize("bench", ["gzip", "mcf"])
    def test_loads_with_replica_stable(self, bench):
        short = run_experiment(
            ExperimentSpec.from_kwargs(bench, "ICR-P-PS(S)", n_instructions=80_000)
        )
        long = run_experiment(
            ExperimentSpec.from_kwargs(bench, "ICR-P-PS(S)", n_instructions=160_000)
        )
        assert short.loads_with_replica == pytest.approx(
            long.loads_with_replica, abs=0.08
        )

    @pytest.mark.parametrize("bench", ["gzip", "mcf"])
    def test_miss_rate_stable(self, bench):
        short = run_experiment(
            ExperimentSpec.from_kwargs(bench, "BaseP", n_instructions=80_000)
        )
        long = run_experiment(
            ExperimentSpec.from_kwargs(bench, "BaseP", n_instructions=160_000)
        )
        assert short.miss_rate == pytest.approx(long.miss_rate, abs=0.03)

    def test_normalized_cycles_stable(self):
        def ratio(n):
            base = run_experiment(
                ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=n)
            )
            ecc = run_experiment(
                ExperimentSpec.from_kwargs("gzip", "BaseECC", n_instructions=n)
            )
            return ecc.cycles / base.cycles

        assert ratio(80_000) == pytest.approx(ratio(160_000), abs=0.05)

    def test_cpi_stable(self):
        # CPI converges more slowly than the cache metrics (the branch
        # predictor keeps training), hence the wider tolerance.
        short = run_experiment(
            ExperimentSpec.from_kwargs("vpr", "BaseP", n_instructions=80_000)
        )
        long = run_experiment(
            ExperimentSpec.from_kwargs("vpr", "BaseP", n_instructions=160_000)
        )
        assert short.cpi == pytest.approx(long.cpi, rel=0.15)
