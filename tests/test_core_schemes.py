"""Tests for the named-scheme registry (Section 3.2)."""

import pytest

from repro.coding.protection import ProtectionKind
from repro.core.config import LookupMode, ReplicationTrigger
from repro.core.schemes import (
    ALL_SCHEMES,
    HEADLINE_SCHEMES,
    iter_configs,
    make_cache,
    make_config,
)


class TestRegistry:
    def test_all_ten_schemes_buildable(self):
        assert len(ALL_SCHEMES) == 10
        for name in ALL_SCHEMES:
            config = make_config(name)
            assert config.name == name

    def test_headline_schemes_are_the_papers(self):
        assert HEADLINE_SCHEMES == ("ICR-P-PS(S)", "ICR-ECC-PS(S)")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_config("ICR-X-PS(S)")
        with pytest.raises(ValueError):
            make_config("nonsense")


class TestBaseSchemes:
    def test_basep(self):
        config = make_config("BaseP")
        assert config.trigger is ReplicationTrigger.NONE
        assert config.protection_unreplicated is ProtectionKind.PARITY
        assert config.load_hit_latency(False) == 1

    def test_baseecc(self):
        config = make_config("BaseECC")
        assert config.protection_unreplicated is ProtectionKind.ECC
        assert config.load_hit_latency(False) == 2

    def test_baseecc_spec(self):
        config = make_config("BaseECC-spec")
        assert config.speculative_ecc_loads
        assert config.load_hit_latency(False) == 1

    def test_basep_wt(self):
        config = make_config("BaseP-WT")
        assert config.write_policy == "writethrough"


class TestICRSchemes:
    @pytest.mark.parametrize(
        "name,prot,lookup,trigger",
        [
            ("ICR-P-PS(LS)", ProtectionKind.PARITY, LookupMode.SERIAL,
             ReplicationTrigger.LOADS_AND_STORES),
            ("ICR-P-PS(S)", ProtectionKind.PARITY, LookupMode.SERIAL,
             ReplicationTrigger.STORES),
            ("ICR-P-PP(LS)", ProtectionKind.PARITY, LookupMode.PARALLEL,
             ReplicationTrigger.LOADS_AND_STORES),
            ("ICR-P-PP(S)", ProtectionKind.PARITY, LookupMode.PARALLEL,
             ReplicationTrigger.STORES),
            ("ICR-ECC-PS(LS)", ProtectionKind.ECC, LookupMode.SERIAL,
             ReplicationTrigger.LOADS_AND_STORES),
            ("ICR-ECC-PS(S)", ProtectionKind.ECC, LookupMode.SERIAL,
             ReplicationTrigger.STORES),
            ("ICR-ECC-PP(LS)", ProtectionKind.ECC, LookupMode.PARALLEL,
             ReplicationTrigger.LOADS_AND_STORES),
            ("ICR-ECC-PP(S)", ProtectionKind.ECC, LookupMode.PARALLEL,
             ReplicationTrigger.STORES),
        ],
    )
    def test_icr_scheme_decomposition(self, name, prot, lookup, trigger):
        config = make_config(name)
        assert config.protection_unreplicated is prot
        assert config.lookup is lookup
        assert config.trigger is trigger

    def test_name_normalization(self):
        assert make_config("icr-p-ps (s)").name == "ICR-P-PS(S)"
        assert make_config("ICR-ECC-PP(LS)").name == "ICR-ECC-PP(LS)"


class TestKnobForwarding:
    def test_decay_window_forwarded(self):
        assert make_config("ICR-P-PS(S)", decay_window=1000).decay_window == 1000

    def test_geometry_forwarded(self):
        from repro.cache.set_assoc import CacheGeometry

        geometry = CacheGeometry(32 * 1024, 8, 64)
        config = make_config("BaseP", geometry=geometry)
        assert config.geometry.n_sets == 64

    def test_leave_replicas_forwarded(self):
        assert make_config(
            "ICR-P-PS(S)", leave_replicas_on_evict=True
        ).leave_replicas_on_evict

    def test_make_cache_builds_icr_cache(self):
        cache = make_cache("ICR-P-PS(S)")
        assert cache.geometry.n_sets == 64
        assert cache.config.name == "ICR-P-PS(S)"

    def test_iter_configs_shares_knobs(self):
        configs = iter_configs(["BaseP", "ICR-P-PS(S)"], decay_window=500)
        assert all(c.decay_window == 500 for c in configs)

    def test_base_schemes_ignore_replication_knobs(self):
        # Base schemes force replication-related fields off.
        config = make_config("BaseP", leave_replicas_on_evict=True, max_replicas=2,
                             second_replica_distances=("N/4",))
        assert not config.leave_replicas_on_evict
        assert config.max_replicas == 1
