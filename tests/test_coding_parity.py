"""Unit and property tests for byte-granularity even parity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.parity import (
    BYTES_PER_WORD,
    WORD_BITS,
    ParityWord,
    byte_parity_bits,
    check_parity,
    failing_bytes,
)

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestByteParityBits:
    def test_zero_word_has_zero_parity(self):
        assert byte_parity_bits(0) == 0

    def test_single_bit_sets_one_parity_bit(self):
        assert byte_parity_bits(1) == 0b1
        assert byte_parity_bits(1 << 8) == 0b10
        assert byte_parity_bits(1 << 63) == 0b1000_0000

    def test_two_bits_same_byte_cancel(self):
        assert byte_parity_bits(0b11) == 0

    def test_all_ones_word(self):
        # Each byte has 8 set bits (even) -> all parity bits zero.
        assert byte_parity_bits((1 << 64) - 1) == 0

    def test_word_is_masked_to_64_bits(self):
        assert byte_parity_bits(1 << 64) == byte_parity_bits(0)

    @given(WORDS)
    def test_parity_is_xor_reduction_per_byte(self, word):
        bits = byte_parity_bits(word)
        for i in range(BYTES_PER_WORD):
            byte = (word >> (8 * i)) & 0xFF
            expected = bin(byte).count("1") & 1
            assert (bits >> i) & 1 == expected


class TestCheckParity:
    @given(WORDS)
    def test_clean_word_passes(self, word):
        assert check_parity(word, byte_parity_bits(word))

    @given(WORDS, st.integers(min_value=0, max_value=WORD_BITS - 1))
    def test_single_bit_flip_always_detected(self, word, bit):
        parity = byte_parity_bits(word)
        assert not check_parity(word ^ (1 << bit), parity)

    @given(
        WORDS,
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    )
    def test_double_flip_same_byte_escapes(self, word, byte, bit_a, bit_b):
        """The fundamental parity limitation: even flips per byte hide."""
        if bit_a == bit_b:
            return
        corrupted = word ^ (1 << (8 * byte + bit_a)) ^ (1 << (8 * byte + bit_b))
        assert check_parity(corrupted, byte_parity_bits(word))

    @given(
        WORDS,
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    def test_double_flip_different_bytes_detected(self, word, bit_a, bit_b):
        if bit_a // 8 == bit_b // 8:
            return
        corrupted = word ^ (1 << bit_a) ^ (1 << bit_b)
        assert not check_parity(corrupted, byte_parity_bits(word))


class TestFailingBytes:
    def test_no_failures_when_clean(self):
        assert failing_bytes(0x1234, byte_parity_bits(0x1234)) == []

    def test_reports_corrupted_byte_index(self):
        word = 0xDEADBEEF
        parity = byte_parity_bits(word)
        assert failing_bytes(word ^ (1 << 17), parity) == [2]

    def test_reports_multiple_bytes(self):
        word = 0
        parity = byte_parity_bits(word)
        corrupted = word ^ 1 ^ (1 << 60)
        assert failing_bytes(corrupted, parity) == [0, 7]


class TestParityWord:
    def test_write_then_check(self):
        cell = ParityWord(0xCAFEBABE)
        assert cell.check()

    def test_data_bit_flip_detected(self):
        cell = ParityWord(0xCAFEBABE)
        cell.flip_data_bit(5)
        assert not cell.check()

    def test_parity_bit_flip_detected(self):
        cell = ParityWord(0xCAFEBABE)
        cell.flip_parity_bit(3)
        assert not cell.check()

    def test_rewrite_clears_error(self):
        cell = ParityWord(1)
        cell.flip_data_bit(0)
        cell.write(2)
        assert cell.check()

    def test_flip_is_involution(self):
        cell = ParityWord(77)
        cell.flip_data_bit(9)
        cell.flip_data_bit(9)
        assert cell.check()

    def test_bad_bit_index_rejected(self):
        cell = ParityWord(0)
        with pytest.raises(ValueError):
            cell.flip_data_bit(64)
        with pytest.raises(ValueError):
            cell.flip_parity_bit(8)
        with pytest.raises(ValueError):
            cell.flip_data_bit(-1)

    @given(WORDS)
    def test_write_masks_to_64_bits(self, word):
        cell = ParityWord(word)
        assert cell.data == word & ((1 << 64) - 1)
