"""Matrix smoke tests: every named scheme on a real workload.

Cheap end-to-end coverage that no scheme variant has a broken path, with
the cross-scheme invariants that must hold on paired traces.
"""

import pytest

from repro.core.schemes import ALL_SCHEMES
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec

N = 12_000
EXTRA_SCHEMES = ("BaseECC-spec", "BaseP-WT")


@pytest.fixture(scope="module")
def matrix():
    results = {}
    for scheme in ALL_SCHEMES + EXTRA_SCHEMES:
        results[scheme] = run_experiment(
            ExperimentSpec.from_kwargs("vpr", scheme, n_instructions=N)
        )
    return results


@pytest.mark.parametrize("scheme", ALL_SCHEMES + EXTRA_SCHEMES)
def test_scheme_runs_and_reports(matrix, scheme):
    r = matrix[scheme]
    assert r.cycles > N / 4  # cannot beat the issue width
    assert 0.0 <= r.miss_rate <= 1.0
    assert 0.0 <= r.loads_with_replica <= 1.0
    assert r.energy.total_nj > 0
    snapshot = r.dl1
    assert snapshot["loads"] + snapshot["stores"] > 0
    assert snapshot["load_hits"] + snapshot["load_misses"] == snapshot["loads"]


class TestCrossSchemeInvariants:
    def test_basep_is_fastest(self, matrix):
        fastest = min(
            (r.cycles for name, r in matrix.items() if name != "BaseECC-spec"),
        )
        assert matrix["BaseP"].cycles == fastest or (
            matrix["BaseP"].cycles <= fastest * 1.001
        )

    def test_base_schemes_never_replicate(self, matrix):
        for name in ("BaseP", "BaseECC", "BaseECC-spec", "BaseP-WT"):
            assert matrix[name].dl1["replication_attempts"] == 0

    def test_all_icr_schemes_replicate(self, matrix):
        for name in ALL_SCHEMES:
            if name.startswith("ICR"):
                assert matrix[name].dl1["replication_successes"] > 0, name

    def test_trigger_pairs_share_cache_behaviour(self, matrix):
        """PS vs PP with the same trigger differ only in load latency."""
        for trigger in ("S", "LS"):
            ps = matrix[f"ICR-P-PS({trigger})"]
            pp = matrix[f"ICR-P-PP({trigger})"]
            assert ps.miss_rate == pp.miss_rate
            assert ps.loads_with_replica == pp.loads_with_replica
            assert ps.cycles <= pp.cycles

    def test_protection_pairs_share_cache_behaviour(self, matrix):
        """P vs ECC protection changes latency/energy, not placement."""
        for trigger in ("S", "LS"):
            p = matrix[f"ICR-P-PS({trigger})"]
            e = matrix[f"ICR-ECC-PS({trigger})"]
            assert p.miss_rate == e.miss_rate
            assert p.replication_ability == e.replication_ability
            assert p.cycles <= e.cycles

    def test_ls_attempts_at_least_s(self, matrix):
        assert (
            matrix["ICR-P-PS(LS)"].dl1["replication_attempts"]
            >= matrix["ICR-P-PS(S)"].dl1["replication_attempts"]
        )

    def test_ecc_energy_exceeds_parity_energy(self, matrix):
        assert (
            matrix["BaseECC"].energy.l1_checks_nj
            > matrix["BaseP"].energy.l1_checks_nj
        )

    def test_write_through_maximizes_l2_traffic(self, matrix):
        assert matrix["BaseP-WT"].energy.l2_nj > matrix["BaseP"].energy.l2_nj
