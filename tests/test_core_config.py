"""Tests for ICRConfig, distance resolution and the latency table."""

import pytest

from repro.cache.set_assoc import CacheGeometry
from repro.coding.protection import ProtectionKind
from repro.core.config import (
    ICRConfig,
    LookupMode,
    ReplicationTrigger,
    power2_distances,
    resolve_distance,
    variant,
)


class TestResolveDistance:
    def test_fractions(self):
        assert resolve_distance("N/2", 64) == 32
        assert resolve_distance("N/4", 64) == 16
        assert resolve_distance("N/8", 64) == 8

    def test_zero(self):
        assert resolve_distance("0", 64) == 0
        assert resolve_distance(0, 64) == 0

    def test_literal_integers(self):
        assert resolve_distance(7, 64) == 7
        assert resolve_distance("7", 64) == 7

    def test_wraps_modulo_sets(self):
        assert resolve_distance(65, 64) == 1

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            resolve_distance("N/5", 64)  # 64 % 5 != 0


class TestPower2Distances:
    def test_sequence_shape(self):
        # N=64: 32, then 32 -/+ 16, then 32 -/+ 8, ...
        assert power2_distances(64, 5) == [32, 16, 48, 24, 40]

    def test_max_attempts_respected(self):
        assert len(power2_distances(64, 3)) == 3

    def test_deduplicates_small_caches(self):
        seq = power2_distances(4, 8)
        assert len(seq) == len(set(seq))

    def test_first_is_always_n_over_2(self):
        for n in (8, 16, 64, 256):
            assert power2_distances(n, 4)[0] == n // 2


class TestLoadHitLatency:
    def test_base_parity(self):
        config = ICRConfig(trigger=ReplicationTrigger.NONE)
        assert config.load_hit_latency(replicated=False) == 1

    def test_base_ecc(self):
        config = ICRConfig(
            trigger=ReplicationTrigger.NONE,
            protection_unreplicated=ProtectionKind.ECC,
        )
        assert config.load_hit_latency(replicated=False) == 2

    def test_speculative_ecc_hides_latency(self):
        config = ICRConfig(
            trigger=ReplicationTrigger.NONE,
            protection_unreplicated=ProtectionKind.ECC,
            speculative_ecc_loads=True,
        )
        assert config.load_hit_latency(replicated=False) == 1

    def test_ps_replicated_is_one_cycle(self):
        config = ICRConfig(lookup=LookupMode.SERIAL)
        assert config.load_hit_latency(replicated=True) == 1

    def test_pp_replicated_is_two_cycles(self):
        config = ICRConfig(lookup=LookupMode.PARALLEL)
        assert config.load_hit_latency(replicated=True) == 2

    def test_icr_ecc_unreplicated_is_two_cycles(self):
        config = ICRConfig(protection_unreplicated=ProtectionKind.ECC)
        assert config.load_hit_latency(replicated=False) == 2
        assert config.load_hit_latency(replicated=True) == 1


class TestProtectionFor:
    def test_replicated_lines_always_parity(self):
        config = ICRConfig(protection_unreplicated=ProtectionKind.ECC)
        assert config.protection_for(replicated=True) is ProtectionKind.PARITY

    def test_unreplicated_keeps_configured_kind(self):
        config = ICRConfig(protection_unreplicated=ProtectionKind.ECC)
        assert config.protection_for(replicated=False) is ProtectionKind.ECC

    def test_base_scheme_ignores_replicated_flag(self):
        config = ICRConfig(
            trigger=ReplicationTrigger.NONE,
            protection_unreplicated=ProtectionKind.ECC,
        )
        assert config.protection_for(replicated=True) is ProtectionKind.ECC


class TestValidation:
    def test_three_replicas_rejected(self):
        with pytest.raises(ValueError):
            ICRConfig(max_replicas=3)

    def test_two_replicas_need_second_distances(self):
        with pytest.raises(ValueError):
            ICRConfig(max_replicas=2)

    def test_two_replicas_ok_with_distances(self):
        config = ICRConfig(max_replicas=2, second_replica_distances=("N/4",))
        assert config.resolved_second_distances() == (16,)

    def test_bad_write_policy_rejected(self):
        with pytest.raises(ValueError):
            ICRConfig(write_policy="writearound")

    def test_base_cannot_request_replicas(self):
        with pytest.raises(ValueError):
            ICRConfig(
                trigger=ReplicationTrigger.NONE,
                max_replicas=2,
                second_replica_distances=("N/4",),
            )


class TestDistancesResolution:
    def test_default_distance_is_n_over_2(self):
        assert ICRConfig().resolved_distances() == (32,)

    def test_all_distances_merged_unique(self):
        config = ICRConfig(
            replica_distances=("N/2", "N/4"),
            second_replica_distances=("N/4",),
            max_replicas=2,
        )
        assert config.all_replica_distances() == (32, 16)

    def test_geometry_changes_resolution(self):
        config = ICRConfig(geometry=CacheGeometry(32 * 1024, 4, 64))  # 128 sets
        assert config.resolved_distances() == (64,)


class TestVariant:
    def test_variant_replaces_fields(self):
        config = ICRConfig()
        changed = variant(config, decay_window=1000, name="x")
        assert changed.decay_window == 1000
        assert changed.name == "x"
        assert config.decay_window == 0  # original untouched

    def test_triggers(self):
        assert ReplicationTrigger.STORES.on_store
        assert not ReplicationTrigger.STORES.on_fill
        assert ReplicationTrigger.LOADS_AND_STORES.on_fill
        assert not ReplicationTrigger.NONE.on_store
