"""Cross-validation: the fast scoreboard model vs the cycle-stepped reference.

The figure suite relies on the O(1)-per-instruction scheduler in
:mod:`repro.cpu.pipeline`.  These tests bound its approximation error
against the explicit cycle-stepped :class:`ReferencePipeline` on identical
traces: absolute cycles within a modest band, and — what the paper's
normalized figures actually use — *relative* scheme effects in agreement.
"""

import pytest

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core.schemes import make_cache
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineConfig
from repro.cpu.reference import ReferencePipeline
from repro.workloads.generator import trace_for
from repro.workloads.spec2000 import profile_for

N = 6_000


def run(cls, scheme, trace, config=None, **scheme_kwargs):
    hierarchy = MemoryHierarchy(make_cache(scheme, **scheme_kwargs), HierarchyConfig())
    return cls(hierarchy, config).run(trace)


@pytest.fixture(scope="module", params=["gzip", "mcf", "mesa"])
def bench_trace(request):
    return request.param, trace_for(profile_for(request.param), N)


class TestAbsoluteAgreement:
    def test_cycles_within_band(self, bench_trace):
        _, trace = bench_trace
        fast = run(OutOfOrderPipeline, "BaseP", trace)
        ref = run(ReferencePipeline, "BaseP", trace)
        assert fast.cycles == pytest.approx(ref.cycles, rel=0.20)

    def test_event_counts_identical(self, bench_trace):
        _, trace = bench_trace
        fast = run(OutOfOrderPipeline, "BaseP", trace)
        ref = run(ReferencePipeline, "BaseP", trace)
        assert fast.loads == ref.loads
        assert fast.stores == ref.stores
        assert fast.branches == ref.branches


class TestRelativeAgreement:
    """The quantities the figures report must match the reference closely."""

    def test_ecc_penalty_agrees(self, bench_trace):
        _, trace = bench_trace
        fast_p = run(OutOfOrderPipeline, "BaseP", trace)
        fast_e = run(OutOfOrderPipeline, "BaseECC", trace)
        ref_p = run(ReferencePipeline, "BaseP", trace)
        ref_e = run(ReferencePipeline, "BaseECC", trace)
        fast_ratio = fast_e.cycles / fast_p.cycles
        ref_ratio = ref_e.cycles / ref_p.cycles
        assert fast_ratio == pytest.approx(ref_ratio, abs=0.04)

    def test_icr_overhead_agrees(self, bench_trace):
        _, trace = bench_trace
        kwargs = dict(decay_window=0)
        fast_p = run(OutOfOrderPipeline, "BaseP", trace)
        fast_i = run(OutOfOrderPipeline, "ICR-P-PS(S)", trace, **kwargs)
        ref_p = run(ReferencePipeline, "BaseP", trace)
        ref_i = run(ReferencePipeline, "ICR-P-PS(S)", trace, **kwargs)
        fast_ratio = fast_i.cycles / fast_p.cycles
        ref_ratio = ref_i.cycles / ref_p.cycles
        assert fast_ratio == pytest.approx(ref_ratio, abs=0.04)


class TestStructuralLimits:
    def test_reference_respects_width(self):
        """IPC can never exceed the commit width in the reference."""
        trace = trace_for(profile_for("mesa"), 3_000)
        ref = run(ReferencePipeline, "BaseP", trace)
        assert ref.instructions / ref.cycles <= 4.0 + 1e-9

    def test_reference_narrow_machine_slower(self):
        trace = trace_for(profile_for("gzip"), 3_000)
        wide = run(ReferencePipeline, "BaseP", trace)
        narrow = run(
            ReferencePipeline,
            "BaseP",
            trace,
            config=PipelineConfig(issue_width=1, ruu_size=4, lsq_size=2),
        )
        # Short traces are warm-up/miss dominated, muting the width effect.
        assert narrow.cycles > wide.cycles * 1.2

    def test_reference_deterministic(self):
        trace = trace_for(profile_for("gzip"), 2_000)
        a = run(ReferencePipeline, "BaseP", trace)
        b = run(ReferencePipeline, "BaseP", trace)
        assert a.cycles == b.cycles
