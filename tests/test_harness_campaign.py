"""Tests for the Monte Carlo fault-injection campaign engine.

The properties a long unattended campaign leans on:

* the bootstrap CI agrees with the closed-form binomial interval on
  Bernoulli data and is a pure function of (sample, seed);
* adaptive stopping and the final report are deterministic for a fixed
  configuration — two engines given the same config produce the same
  bytes;
* a campaign resumed from a checkpoint finishes with a report
  byte-identical to an uninterrupted run;
* a trial that keeps crashing is recorded as failed (with retries under
  fresh seeds) instead of aborting the campaign.
"""

import json
import math
import random

import pytest

from repro.harness.campaign import (
    CampaignConfig,
    CampaignEngine,
    run_campaign,
)
from repro.harness.runner import ParallelRunner
from repro.harness.stats import bootstrap_ci

#: A campaign small enough to run many times in a test, large enough to
#: exercise batching (trials spans several batches).
SMALL = dict(
    benchmarks=("gzip",),
    schemes=("BaseP", "ICR-P-PS(S)"),
    error_rates=(1e-2,),
    trials=6,
    batch_size=3,
    n_instructions=3_000,
)


def small_config(**over):
    merged = dict(SMALL)
    merged.update(over)
    return CampaignConfig(**merged)


class TestBootstrapCI:
    def test_matches_closed_form_binomial(self):
        # On a 0/1 sample the percentile bootstrap of the mean must land
        # close to the normal-approximation binomial interval.
        rng = random.Random(5)
        n, p = 200, 0.3
        values = [1.0 if rng.random() < p else 0.0 for _ in range(n)]
        ci = bootstrap_ci(values, level=0.95, n_resamples=4000, seed=1)
        phat = sum(values) / n
        half = 1.96 * math.sqrt(phat * (1.0 - phat) / n)
        assert ci.mean == pytest.approx(phat)
        assert ci.lo == pytest.approx(phat - half, abs=0.015)
        assert ci.hi == pytest.approx(phat + half, abs=0.015)
        assert ci.lo <= ci.mean <= ci.hi

    def test_pure_function_of_sample_and_seed(self):
        values = [0.1, 0.4, 0.2, 0.9, 0.3, 0.5]
        a = bootstrap_ci(values, seed=3)
        b = bootstrap_ci(list(values), seed=3)
        assert (a.lo, a.hi) == (b.lo, b.hi)
        c = bootstrap_ci(values, seed=4)
        assert (a.lo, a.hi) != (c.lo, c.hi)

    def test_single_observation_degenerates_to_point(self):
        ci = bootstrap_ci([0.25])
        assert (ci.mean, ci.lo, ci.hi, ci.half_width) == (0.25, 0.25, 0.25, 0.0)

    def test_rejects_empty_and_bad_level(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], level=1.5)


class TestTrialSeeds:
    def test_seeds_unique_across_grid_and_attempts(self):
        config = small_config()
        seeds = {
            config.trial_spec(cell, index, attempt).error_seed
            for cell in config.cells()
            for index in range(config.trials)
            for attempt in range(3)
        }
        assert len(seeds) == len(config.cells()) * config.trials * 3

    def test_retry_gets_a_fresh_seed(self):
        config = small_config()
        cell = config.cells()[0]
        first = config.trial_spec(cell, 0, 0)
        retry = config.trial_spec(cell, 0, 1)
        assert retry.error_seed != first.error_seed
        assert retry.replace(error_seed=0) == first.replace(error_seed=0)

    def test_seeds_are_not_integer_offsets(self):
        # Consecutive trial indices must not map to neighbouring seeds
        # (neighbouring seeds can alias derived sub-streams).
        config = small_config()
        cell = config.cells()[0]
        seeds = [config.trial_spec(cell, i, 0).error_seed for i in range(8)]
        gaps = {abs(b - a) for a, b in zip(seeds, seeds[1:])}
        assert all(gap > 1000 for gap in gaps)


class TestCampaignRuns:
    def test_full_run_summarizes_every_cell(self):
        config = small_config()
        report = run_campaign(config)
        assert report.complete
        assert len(report.outcomes) == 2
        by_scheme = {}
        for outcome in report.outcomes:
            assert len(outcome.ok_records()) == config.trials
            assert outcome.failed_attempts() == 0
            ci = outcome.metric_ci("unrecoverable_load_fraction", config)
            assert ci is not None and ci.lo <= ci.mean <= ci.hi
            by_scheme[outcome.cell.scheme] = ci
        # The paper's claim at campaign scale: ICR is no less resilient.
        assert by_scheme["ICR-P-PS(S)"].mean <= by_scheme["BaseP"].mean + 1e-9
        table = report.to_table()
        assert "ulf_mean" in table and "ICR-P-PS(S)" in table

    def test_report_deterministic_across_engines(self):
        config = small_config()
        a = CampaignEngine(config).run().to_json()
        b = CampaignEngine(config).run().to_json()
        assert a == b

    def test_parallel_runner_reproduces_serial_report(self):
        config = small_config(trials=4, batch_size=4)
        serial = run_campaign(config).to_json()
        parallel = run_campaign(config, ParallelRunner(jobs=2)).to_json()
        assert parallel == serial

    def test_adaptive_stopping_is_deterministic_and_early(self):
        config = small_config(
            trials=12, min_trials=4, batch_size=2, target_half_width=0.9
        )
        first = CampaignEngine(config).run()
        second = CampaignEngine(config).run()
        assert first.to_json() == second.to_json()
        for outcome in first.outcomes:
            # A huge target stops every cell right at min_trials.
            assert outcome.stopped_early
            assert len(outcome.ok_records()) == config.min_trials
        assert first.complete

    def test_max_rounds_reports_incomplete(self):
        config = small_config()
        report = CampaignEngine(config).run(max_rounds=1)
        assert not report.complete
        assert all(len(o.ok_records()) == config.batch_size for o in report.outcomes)


class TestCheckpointResume:
    def test_resume_is_byte_identical_to_uninterrupted(self, tmp_path):
        config = small_config()
        fresh = CampaignEngine(config).run().to_json()

        path = tmp_path / "campaign.json"
        interrupted = CampaignEngine(config, checkpoint_path=path)
        interrupted.run(max_rounds=1)

        resumed = CampaignEngine(config, checkpoint_path=path)
        assert resumed.resumed
        report = resumed.run()
        assert report.to_json() == fresh

    def test_mismatched_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "campaign.json"
        CampaignEngine(small_config(), checkpoint_path=path).run(max_rounds=1)
        other = CampaignEngine(
            small_config(trials=5), checkpoint_path=path
        )
        assert not other.resumed

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text("{not json")
        engine = CampaignEngine(small_config(), checkpoint_path=path)
        assert not engine.resumed


class TestGracefulDegradation:
    def test_crashing_trials_recorded_not_raised(self):
        # Unknown scheme *names* now fail fast at config construction
        # (see test_unknown_scheme_rejected_at_config_time), so a bogus
        # ICR knob stands in as the run-time crash vector: it passes
        # spec construction and blows up inside the worker.
        config = CampaignConfig(
            benchmarks=("gzip",),
            schemes=("ICR-P-PS(S)",),
            trials=2,
            batch_size=2,
            max_trial_retries=1,
            n_instructions=3_000,
            scheme_kwargs={"nosuch_knob": 1},
        )
        report = run_campaign(config)
        assert report.complete
        (outcome,) = report.outcomes
        assert outcome.ok_records() == []
        # Each of the 2 trial indices burns its attempt plus one retry.
        assert outcome.failed_attempts() == 4
        summary = outcome.summary(config)
        assert summary["trials_ok"] == 0
        assert "unrecoverable_load_fraction" not in summary["metrics"]
        for record in outcome.records:
            assert record.status == "failed"
            assert record.error

    def test_failures_do_not_poison_healthy_cells(self):
        # BaseP ignores the ICR knobs (registry metadata) and stays
        # healthy; the ICR cell receives the bogus knob and crashes.
        config = CampaignConfig(
            benchmarks=("gzip",),
            schemes=("BaseP", "ICR-P-PS(S)"),
            trials=2,
            batch_size=2,
            max_trial_retries=0,
            n_instructions=3_000,
            scheme_kwargs={"nosuch_knob": 1},
        )
        report = run_campaign(config)
        by_scheme = {o.cell.scheme: o for o in report.outcomes}
        assert len(by_scheme["BaseP"].ok_records()) == 2
        assert by_scheme["ICR-P-PS(S)"].failed_attempts() == 2

    def test_unknown_scheme_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="registered schemes"):
            CampaignConfig(
                benchmarks=("gzip",),
                schemes=("nosuch-scheme",),
            )


class TestTrialLog:
    def test_jsonl_log_has_one_line_per_attempt(self, tmp_path):
        config = small_config(trials=2, batch_size=2)
        log = tmp_path / "trials.jsonl"
        report = run_campaign(config, trial_log_path=log)
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        total = sum(len(o.records) for o in report.outcomes)
        assert len(lines) == total
        for line in lines:
            assert line["status"] == "ok"
            # Successful attempts carry the full result payload.
            assert line["result"]["format"] == 1
            assert line["result"]["dl1"]["errors_injected"] >= 0
