"""Tests for the synthetic workload generator."""

import pytest

from repro.cpu.isa import OP_BRANCH, OP_LOAD, OP_STORE
from repro.workloads.generator import (
    CHASE_BASE,
    CODE_BASE,
    HOT_BASE,
    STACK_BASE,
    STREAM_BASE,
    WorkloadGenerator,
    WorkloadProfile,
    trace_for,
)


@pytest.fixture
def profile():
    return WorkloadProfile(name="unit", seed=1)


class TestDeterminism:
    def test_same_profile_same_trace(self, profile):
        a = WorkloadGenerator(profile).generate(5000)
        b = WorkloadGenerator(profile).generate(5000)
        assert a.op == b.op
        assert a.addr == b.addr
        assert a.taken == b.taken

    def test_different_seeds_differ(self, profile):
        from dataclasses import replace

        a = WorkloadGenerator(profile).generate(5000)
        b = WorkloadGenerator(replace(profile, seed=2)).generate(5000)
        assert a.addr != b.addr

    def test_seed_offset_differs(self, profile):
        a = WorkloadGenerator(profile).generate(5000, seed_offset=0)
        b = WorkloadGenerator(profile).generate(5000, seed_offset=1)
        assert a.addr != b.addr

    def test_trace_for_caches(self, profile):
        assert trace_for(profile, 2000) is trace_for(profile, 2000)


class TestInstructionMix:
    def test_mix_close_to_profile(self, profile):
        trace = WorkloadGenerator(profile).generate(40_000)
        assert trace.memory_fraction() == pytest.approx(
            profile.mem_fraction, abs=0.04
        )
        mix = trace.mix()
        assert mix["branch"] == pytest.approx(
            profile.branch_fraction, abs=0.06
        )

    def test_store_ratio(self, profile):
        trace = WorkloadGenerator(profile).generate(40_000)
        stores = sum(1 for op in trace.op if op == OP_STORE)
        loads = sum(1 for op in trace.op if op == OP_LOAD)
        assert stores / (stores + loads) == pytest.approx(
            profile.store_ratio, abs=0.06
        )

    def test_fp_profile_generates_fp_ops(self):
        profile = WorkloadProfile(name="fp", fp_fraction=0.6, seed=3)
        mix = WorkloadGenerator(profile).generate(20_000).mix()
        assert mix.get("fp_alu", 0) + mix.get("fp_mul", 0) > 0.1

    def test_trace_validates(self, profile):
        WorkloadGenerator(profile).generate(10_000).validate()


class TestAddressRegions:
    def test_memory_ops_in_known_regions(self, profile):
        trace = WorkloadGenerator(profile).generate(20_000)
        for op, addr in zip(trace.op, trace.addr):
            if op in (OP_LOAD, OP_STORE):
                assert addr >= HOT_BASE

    def test_region_shares_match_profile(self):
        profile = WorkloadProfile(
            name="regions", p_hot=0.4, p_stream=0.3, p_chase=0.2, p_stack=0.1,
            seed=5,
        )
        trace = WorkloadGenerator(profile).generate(60_000)
        counts = {"hot": 0, "stream": 0, "chase": 0, "stack": 0}
        total = 0
        for op, addr in zip(trace.op, trace.addr):
            if op not in (OP_LOAD, OP_STORE):
                continue
            total += 1
            if addr >= STACK_BASE:
                counts["stack"] += 1
            elif addr >= CHASE_BASE:
                counts["chase"] += 1
            elif addr >= STREAM_BASE:
                counts["stream"] += 1
            else:
                counts["hot"] += 1
        assert counts["hot"] / total == pytest.approx(0.4, abs=0.07)
        assert counts["stream"] / total == pytest.approx(0.3, abs=0.07)
        assert counts["chase"] / total == pytest.approx(0.2, abs=0.07)

    def test_streams_are_sequential(self):
        profile = WorkloadProfile(
            name="streams", p_hot=0.0, p_stream=1.0, p_stack=0.0, p_chase=0.0,
            n_streams=1, seed=7,
        )
        trace = WorkloadGenerator(profile).generate(5000)
        addrs = [
            a for op, a in zip(trace.op, trace.addr) if op in (OP_LOAD, OP_STORE)
        ]
        deltas = [b - a for a, b in zip(addrs, addrs[1:])]
        # One stream advancing 8 bytes per access (modulo wraparound).
        assert all(d == 8 for d in deltas if 0 < d < 64)
        assert sum(1 for d in deltas if d == 8) > len(deltas) * 0.95

    def test_phases_shift_hot_region(self):
        profile = WorkloadProfile(
            name="phases", p_hot=1.0, p_stream=0.0, p_stack=0.0, p_chase=0.0,
            phase_instructions=1000, seed=9,
        )
        trace = WorkloadGenerator(profile).generate(3000)
        first = {
            a >> 6
            for op, a in zip(trace.op[:900], trace.addr[:900])
            if op in (OP_LOAD, OP_STORE)
        }
        last = {
            a >> 6
            for op, a in zip(trace.op[2100:], trace.addr[2100:])
            if op in (OP_LOAD, OP_STORE)
        }
        assert first and last and not (first & last)

    def test_phase_shift_preserves_set_mapping(self):
        profile = WorkloadProfile(
            name="phase-sets", p_hot=1.0, p_stream=0.0, p_stack=0.0,
            p_chase=0.0, phase_instructions=1000, seed=9,
        )
        trace = WorkloadGenerator(profile).generate(3000)
        first = {
            (a >> 6) % 64
            for op, a in zip(trace.op[:900], trace.addr[:900])
            if op in (OP_LOAD, OP_STORE)
        }
        last = {
            (a >> 6) % 64
            for op, a in zip(trace.op[2100:], trace.addr[2100:])
            if op in (OP_LOAD, OP_STORE)
        }
        # The phase copy is set-aligned: both windows sample the same span
        # of sets (subset relation allows for sampling noise).
        span = round(64 * profile.hot_set_fraction)
        assert first <= set(range(span))
        assert last <= set(range(span))

    def test_hot_set_concentration(self):
        profile = WorkloadProfile(
            name="conc", p_hot=1.0, p_stream=0.0, p_stack=0.0, p_chase=0.0,
            hot_set_fraction=0.25, hot_blocks=64, seed=11,
        )
        trace = WorkloadGenerator(profile).generate(10_000)
        sets = {
            (a >> 6) % 64
            for op, a in zip(trace.op, trace.addr)
            if op in (OP_LOAD, OP_STORE)
        }
        assert len(sets) <= 16


class TestBranchBehaviour:
    def test_pcs_stay_in_code_region(self, profile):
        trace = WorkloadGenerator(profile).generate(5000)
        for pc in trace.pc:
            assert CODE_BASE <= pc < CODE_BASE + 4 * profile.body_size

    def test_loopback_targets_segment_start(self, profile):
        trace = WorkloadGenerator(profile).generate(5000)
        for op, pc, taken, target in zip(
            trace.op, trace.pc, trace.taken, trace.target
        ):
            if op == OP_BRANCH and taken and target < pc:
                # Backward branches land on a segment boundary.
                assert (target - CODE_BASE) % (4 * profile.segment_length) == 0

    def test_predictable_profile_has_biased_branches(self):
        profile = WorkloadProfile(name="pred", branch_predictability=1.0, seed=13)
        trace = WorkloadGenerator(profile).generate(30_000)
        taken = sum(
            1 for op, t in zip(trace.op, trace.taken) if op == OP_BRANCH and t
        )
        branches = sum(1 for op in trace.op if op == OP_BRANCH)
        bias = taken / branches
        assert bias > 0.6 or bias < 0.4  # strongly skewed overall


class TestValidation:
    def test_bad_region_probabilities_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", p_hot=0.9, p_stream=0.9)

    def test_bad_mem_fraction_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", mem_fraction=1.5)

    def test_tiny_body_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", body_size=4)
