"""Tests for replica-victim selection (all four policies)."""

import pytest

from repro.cache.block import CacheBlock
from repro.core.config import VictimPolicy
from repro.core.decay import DeadBlockPredictor


def block(addr, *, replica=False, last_access=0, lru=0, valid=True):
    b = CacheBlock()
    if valid:
        b.fill(addr, last_access, is_replica=replica)
    b.lru_stamp = lru
    return b


from repro.core.victim import find_replica_victim  # noqa: E402


ALWAYS_DEAD = DeadBlockPredictor(0)
NEVER_DEAD = DeadBlockPredictor(None)


class TestDeadOnly:
    def test_picks_lru_dead_primary(self):
        ways = [block(1, lru=5), block(2, lru=3), block(3, lru=9), block(4, lru=7)]
        victim = find_replica_victim(ways, VictimPolicy.DEAD_ONLY, ALWAYS_DEAD, 0)
        assert victim.block_addr == 2

    def test_never_picks_replicas(self):
        ways = [block(1, replica=True, lru=0), block(2, lru=10)]
        victim = find_replica_victim(ways, VictimPolicy.DEAD_ONLY, ALWAYS_DEAD, 0)
        assert victim.block_addr == 2

    def test_fails_when_no_dead_primary(self):
        ways = [block(1, replica=True), block(2, replica=True)]
        assert find_replica_victim(ways, VictimPolicy.DEAD_ONLY, ALWAYS_DEAD, 0) is None

    def test_fails_when_all_primaries_live(self):
        ways = [block(1), block(2)]
        assert find_replica_victim(ways, VictimPolicy.DEAD_ONLY, NEVER_DEAD, 0) is None


class TestDeadFirst:
    def test_prefers_dead_over_replica(self):
        ways = [block(1, replica=True, lru=0), block(2, lru=10)]
        victim = find_replica_victim(ways, VictimPolicy.DEAD_FIRST, ALWAYS_DEAD, 0)
        assert victim.block_addr == 2

    def test_falls_back_to_replica(self):
        ways = [block(1, replica=True, lru=4), block(2, replica=True, lru=2)]
        victim = find_replica_victim(ways, VictimPolicy.DEAD_FIRST, NEVER_DEAD, 0)
        assert victim.block_addr == 2  # LRU among replicas


class TestReplicaFirst:
    def test_prefers_replica_over_dead(self):
        ways = [block(1, replica=True, lru=9), block(2, lru=0)]
        victim = find_replica_victim(ways, VictimPolicy.REPLICA_FIRST, ALWAYS_DEAD, 0)
        assert victim.block_addr == 1

    def test_falls_back_to_dead(self):
        ways = [block(1, lru=9), block(2, lru=3)]
        victim = find_replica_victim(ways, VictimPolicy.REPLICA_FIRST, ALWAYS_DEAD, 0)
        assert victim.block_addr == 2


class TestReplicaOnly:
    def test_only_replicas(self):
        ways = [block(1, lru=0), block(2, replica=True, lru=9)]
        victim = find_replica_victim(ways, VictimPolicy.REPLICA_ONLY, ALWAYS_DEAD, 0)
        assert victim.block_addr == 2

    def test_fails_without_replicas(self):
        ways = [block(1), block(2)]
        assert (
            find_replica_victim(ways, VictimPolicy.REPLICA_ONLY, ALWAYS_DEAD, 0) is None
        )


class TestExclusions:
    def test_primary_itself_excluded(self):
        """Distance-0 horizontal replication must not evict its own primary."""
        primary = block(1, lru=0)
        ways = [primary, block(2, lru=5)]
        victim = find_replica_victim(
            ways, VictimPolicy.DEAD_ONLY, ALWAYS_DEAD, 0, exclude_block=primary
        )
        assert victim.block_addr == 2

    def test_existing_replica_of_same_block_excluded(self):
        """Placing a second replica must not evict the first one."""
        ways = [block(7, replica=True, lru=0), block(2, replica=True, lru=5)]
        victim = find_replica_victim(
            ways, VictimPolicy.REPLICA_ONLY, ALWAYS_DEAD, 0, exclude_addr=7
        )
        assert victim.block_addr == 2

    def test_primary_with_same_addr_not_excluded(self):
        """exclude_addr only protects replicas, not a primary that aliases."""
        ways = [block(7, lru=0)]
        victim = find_replica_victim(
            ways, VictimPolicy.DEAD_ONLY, ALWAYS_DEAD, 0, exclude_addr=7
        )
        assert victim is not None


class TestInvalidFrames:
    def test_invalid_skipped_by_default(self):
        ways = [block(0, valid=False), block(2, replica=True)]
        assert find_replica_victim(ways, VictimPolicy.DEAD_ONLY, ALWAYS_DEAD, 0) is None

    def test_invalid_used_when_allowed(self):
        empty = block(0, valid=False)
        ways = [empty, block(2, lru=5)]
        victim = find_replica_victim(
            ways, VictimPolicy.DEAD_ONLY, ALWAYS_DEAD, 0, allow_invalid=True
        )
        assert victim is empty


class TestDecayInteraction:
    def test_live_blocks_protected_with_finite_window(self):
        predictor = DeadBlockPredictor(1000)
        recent = block(1, last_access=900, lru=0)
        stale = block(2, last_access=0, lru=9)
        victim = find_replica_victim(
            [recent, stale], VictimPolicy.DEAD_ONLY, predictor, now=1000
        )
        assert victim.block_addr == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            find_replica_victim([block(1)], "bogus", ALWAYS_DEAD, 0)
