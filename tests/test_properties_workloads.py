"""Property-based tests over randomized workload profiles and pipelines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core.schemes import make_cache
from repro.cpu.isa import MEMORY_OPS, N_REGS, OP_BRANCH
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineConfig
from repro.workloads.generator import WorkloadGenerator, WorkloadProfile

# Random-but-valid profiles: region probabilities are normalized from
# free weights so the sum-to-one invariant always holds.
profiles = st.builds(
    lambda wh, ws, wc, wk, mem, store, branch, hot, zipf, seed: WorkloadProfile(
        name="hyp",
        mem_fraction=mem,
        store_ratio=store,
        branch_fraction=branch,
        p_hot=wh / (wh + ws + wc + wk),
        p_stream=ws / (wh + ws + wc + wk),
        p_chase=wc / (wh + ws + wc + wk),
        p_stack=1.0
        - wh / (wh + ws + wc + wk)
        - ws / (wh + ws + wc + wk)
        - wc / (wh + ws + wc + wk),
        hot_blocks=hot,
        zipf_s=zipf,
        seed=seed,
    ),
    wh=st.floats(min_value=0.1, max_value=5),
    ws=st.floats(min_value=0.1, max_value=5),
    wc=st.floats(min_value=0.0, max_value=2),
    wk=st.floats(min_value=0.1, max_value=5),
    mem=st.floats(min_value=0.1, max_value=0.6),
    store=st.floats(min_value=0.05, max_value=0.6),
    branch=st.floats(min_value=0.02, max_value=0.3),
    hot=st.integers(min_value=8, max_value=300),
    zipf=st.floats(min_value=0.3, max_value=1.5),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestGeneratorProperties:
    @given(profile=profiles)
    @settings(max_examples=30, deadline=None)
    def test_any_valid_profile_generates_valid_traces(self, profile):
        trace = WorkloadGenerator(profile).generate(2_000)
        trace.validate()
        assert len(trace) == 2_000

    @given(profile=profiles)
    @settings(max_examples=20, deadline=None)
    def test_generation_is_deterministic(self, profile):
        a = WorkloadGenerator(profile).generate(1_000)
        b = WorkloadGenerator(profile).generate(1_000)
        assert a.op == b.op and a.addr == b.addr and a.pc == b.pc

    @given(profile=profiles)
    @settings(max_examples=20, deadline=None)
    def test_prefix_property(self, profile):
        """A shorter trace is an exact prefix of a longer one."""
        short = WorkloadGenerator(profile).generate(500)
        long = WorkloadGenerator(profile).generate(1_500)
        assert long.op[:500] == short.op
        assert long.addr[:500] == short.addr

    @given(profile=profiles)
    @settings(max_examples=20, deadline=None)
    def test_registers_in_range(self, profile):
        trace = WorkloadGenerator(profile).generate(1_000)
        for dest, src1, src2 in zip(trace.dest, trace.src1, trace.src2):
            assert 0 <= dest < N_REGS
            assert 0 <= src1 < N_REGS
            assert 0 <= src2 < N_REGS

    @given(profile=profiles)
    @settings(max_examples=15, deadline=None)
    def test_memory_ops_have_addresses(self, profile):
        trace = WorkloadGenerator(profile).generate(1_000)
        for op, addr in zip(trace.op, trace.addr):
            if op in MEMORY_OPS:
                assert addr > 0
            if op == OP_BRANCH:
                assert addr == 0


class TestPipelineProperties:
    def _cycles(self, trace, scheme="BaseP", config=None):
        hierarchy = MemoryHierarchy(make_cache(scheme), HierarchyConfig())
        return OutOfOrderPipeline(hierarchy, config).run(trace).cycles

    @given(profile=profiles)
    @settings(max_examples=12, deadline=None)
    def test_cycles_at_least_width_bound(self, profile):
        """Can never finish faster than issue-width allows."""
        trace = WorkloadGenerator(profile).generate(1_000)
        assert self._cycles(trace) >= len(trace) / 4

    @given(profile=profiles)
    @settings(max_examples=12, deadline=None)
    def test_slower_memory_never_helps(self, profile):
        """Monotonicity: ECC's 2-cycle loads can only add cycles."""
        trace = WorkloadGenerator(profile).generate(1_500)
        assert self._cycles(trace, "BaseECC") >= self._cycles(trace, "BaseP")

    @given(profile=profiles)
    @settings(max_examples=12, deadline=None)
    def test_narrower_machine_never_faster(self, profile):
        trace = WorkloadGenerator(profile).generate(1_500)
        narrow = self._cycles(
            trace, config=PipelineConfig(issue_width=1, ruu_size=4, lsq_size=2)
        )
        wide = self._cycles(trace)
        assert narrow >= wide

    @given(profile=profiles)
    @settings(max_examples=10, deadline=None)
    def test_icr_never_wins_in_drop_mode(self, profile):
        """Without leave-in-place, replication can only cost cycles."""
        trace = WorkloadGenerator(profile).generate(1_500)
        base = self._cycles(trace, "BaseP")
        icr = self._cycles(trace, "ICR-P-PS(S)")
        assert icr >= base * 0.999  # paired traces; tiny slack for ties
