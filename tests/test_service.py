"""End-to-end tests for the simulation job server.

These pin the ISSUE's acceptance behaviors: N concurrent identical
submissions run exactly one simulation and return results byte-identical
to a direct :func:`repro.api.run_experiment` call; a warm resubmission is
answered from the read-through store without touching the runner; and a
server killed with a queued backlog resumes it after restart.

All servers bind port 0 (ephemeral) and run one in-process worker, so
the suite is deterministic and leaves no stray processes.
"""

import json
import socket
import threading

import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)

SPEC = ExperimentSpec("gzip", "ICR-P-PS(S)", n_instructions=5000)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        port=0, workers=1, queue_dir=tmp_path / "queue"
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestSingleJob:
    def test_submit_wait_result_matches_direct(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            assert client.health()
            served = client.run(SPEC, timeout=120)
        direct = run_experiment(SPEC)
        assert served.to_dict() == direct.to_dict()

    def test_job_endpoint_reports_lifecycle(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            submitted = client.submit(SPEC)
            assert submitted["job"]["id"] == SPEC.key()
            assert submitted["submission"] == "queued"
            payload = client.wait(SPEC.key(), timeout=120)
            assert payload["job"]["state"] == "done"
            assert payload["job"]["attempts"] == 1
            assert payload["result"] is not None

    def test_result_endpoint_serves_cached_key(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            client.run(SPEC, timeout=120)
            result = client.result(SPEC.key())
            assert result.to_dict() == run_experiment(SPEC).to_dict()

    def test_unknown_result_key_is_404(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            with pytest.raises(ServiceError) as exc_info:
                client.result("0" * 32)
            assert exc_info.value.status == 404


class TestDedupAndCache:
    def test_concurrent_identical_submissions_run_once(self, tmp_path):
        """The headline acceptance test: N clients, one simulation."""
        n = 6
        with ServiceThread(_config(tmp_path)) as st:
            results = [None] * n
            errors = []

            def submit_and_wait(i):
                try:
                    client = ServiceClient(port=st.port)
                    results[i] = client.run(SPEC, timeout=120)
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit_and_wait, args=(i,))
                for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            telemetry = ServiceClient(port=st.port).telemetry()

        assert not errors
        direct = run_experiment(SPEC)
        for result in results:
            assert result is not None
            assert result.to_dict() == direct.to_dict()
        # Exactly one simulation ran; every other submission either
        # deduped onto it or (if it landed after completion) hit the
        # result store.  Nothing ran twice.
        assert telemetry["runner"]["simulated"] == 1
        assert telemetry["submissions"] == n
        assert (
            telemetry["dedup_hits"] + telemetry["cache_served"] == n - 1
        )

    def test_warm_resubmission_skips_the_runner(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            client.run(SPEC, timeout=120)
            before = client.telemetry()["runner"]["simulated"]
            resubmitted = client.submit(SPEC)
            after = client.telemetry()
            assert resubmitted["submission"] == "cached"
            assert "result" in resubmitted  # answered inline
            assert after["runner"]["simulated"] == before
            assert after["cache_served"] >= 1

    def test_distinct_specs_both_run(self, tmp_path):
        other = ExperimentSpec("gzip", "BaseP", n_instructions=5000)
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            a = client.run(SPEC, timeout=120)
            b = client.run(other, timeout=120)
            telemetry = client.telemetry()
        assert a.scheme != b.scheme
        assert telemetry["runner"]["simulated"] == 2

    def test_disk_cache_survives_server_restart(self, tmp_path):
        """A new server answers from the shared disk cache, no rerun."""
        with ServiceThread(_config(tmp_path)) as st:
            ServiceClient(port=st.port).run(SPEC, timeout=120)
        with ServiceThread(
            _config(tmp_path, queue_dir=tmp_path / "queue2")
        ) as st:
            client = ServiceClient(port=st.port)
            submitted = client.submit(SPEC)
            assert submitted["submission"] == "cached"
            assert client.telemetry()["runner"]["simulated"] == 0


class TestCrashRecovery:
    def test_killed_server_resumes_queued_backlog(self, tmp_path):
        config = _config(tmp_path)
        # Phase 1: a server whose execution lane never starts — it
        # accepts and persists jobs but cannot run them, which models a
        # process killed with a backlog.
        with ServiceThread(config, start_execution=False) as st:
            client = ServiceClient(port=st.port)
            submitted = client.submit(SPEC)
            assert submitted["job"]["state"] == "queued"
        # Phase 2: a fresh server over the same queue directory must
        # resume and drain the backlog without a resubmission.
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            payload = client.wait(SPEC.key(), timeout=120)
            assert payload["job"]["state"] == "done"
        assert payload["result"] is not None
        direct = run_experiment(SPEC)
        assert payload["result"] == direct.to_dict()


class TestEvents:
    def test_sse_stream_replays_full_lifecycle(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            client.run(SPEC, timeout=120)
            events = list(client.events(SPEC.key(), timeout=30))
        kinds = [e["event"] for e in events]
        assert kinds == ["queued", "started", "done"]
        assert [e["seq"] for e in events] == [0, 1, 2]

    def test_events_for_unknown_job_is_404(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            with pytest.raises(ServiceError) as exc_info:
                list(client.events("not-a-job", timeout=10))
            assert exc_info.value.status == 404


class TestErrors:
    def test_unknown_scheme_is_http_400_with_catalog(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            bad = SPEC.to_dict()
            bad["scheme"] = "no-such-scheme"
            with pytest.raises(ServiceError) as exc_info:
                client._request("POST", "/v1/jobs", {"spec": bad})
        assert exc_info.value.status == 400
        assert "no-such-scheme" in exc_info.value.message
        assert "ICR-P-PS(S)" in exc_info.value.message  # catalog listed

    def test_malformed_body_is_400(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            with pytest.raises(ServiceError) as exc_info:
                client._request("POST", "/v1/jobs", {"nope": 1})
            assert exc_info.value.status == 400

    def test_unknown_endpoint_is_404(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            with pytest.raises(ServiceError) as exc_info:
                client._request("GET", "/v1/bogus")
            assert exc_info.value.status == 404

    def test_unknown_job_is_404(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            with pytest.raises(ServiceError) as exc_info:
                client.job("not-a-job")
            assert exc_info.value.status == 404


class TestCampaigns:
    CAMPAIGN = {
        "benchmarks": ["gzip"],
        "schemes": ["BaseP", "ICR-P-PS(S)"],
        "trials": 4,
        "min_trials": 2,
        "batch_size": 2,
        "n_instructions": 3000,
    }

    def test_campaign_runs_and_reports(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            submitted = client.submit_campaign(self.CAMPAIGN)
            job_id = submitted["job"]["id"]
            assert job_id.startswith("campaign-")
            payload = client.wait(job_id, timeout=300)
            assert payload["job"]["state"] == "done"
            report = payload["report"]
            assert report["complete"] is True
            assert len(report["cells"]) == 2
            telemetry = client.telemetry()
            assert job_id in telemetry["campaigns"]

    def test_identical_campaign_resubmission_is_cached(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            job_id = client.submit_campaign(self.CAMPAIGN)["job"]["id"]
            client.wait(job_id, timeout=300)
            again = client.submit_campaign(self.CAMPAIGN)
            assert again["submission"] == "cached"
            assert again["job"]["id"] == job_id

    def test_bad_campaign_is_400(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            with pytest.raises(ServiceError) as exc_info:
                client.submit_campaign({**self.CAMPAIGN, "schemes": ["nope"]})
            assert exc_info.value.status == 400
            with pytest.raises(ServiceError) as exc_info:
                client.submit_campaign({**self.CAMPAIGN, "bogus_field": 1})
            assert exc_info.value.status == 400


class TestIntrospection:
    def test_schemes_endpoint_mirrors_registry(self, tmp_path):
        from repro.api import list_schemes

        with ServiceThread(_config(tmp_path)) as st:
            served = ServiceClient(port=st.port).schemes()
        assert [s["name"] for s in served] == list(list_schemes())
        by_name = {s["name"]: s for s in served}
        assert by_name["ICR-P-PS(S)"]["replicates"] is True
        assert by_name["BaseP"]["kind"] == "base"

    def test_telemetry_shape(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            client.run(SPEC, timeout=120)
            telemetry = client.telemetry()
        for key in (
            "uptime", "queue_depth", "jobs", "submissions", "dedup_hits",
            "cache_served", "store", "runner", "backend_latency",
        ):
            assert key in telemetry
        assert telemetry["jobs"]["done"] == 1
        latency = telemetry["backend_latency"]["object"]
        assert latency["count"] == 1
        assert sum(latency["histogram"]["counts"]) == 1


class TestReviewHardening:
    """Regression tests for the security/robustness review: hostile wire
    input, resume fault isolation, bounded retention, and recovery when
    a finished job's result has been evicted from every cache tier."""

    def test_enum_gadget_payload_is_400(self, tmp_path):
        """The __enum__ wire tag must not import-and-call outside repro."""
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            bad = SPEC.to_dict()
            bad["scheme_kwargs"] = {
                "victim_policy": {"__enum__": "os:system", "value": "true"}
            }
            with pytest.raises(ServiceError) as exc_info:
                client._request("POST", "/v1/jobs", {"spec": bad})
            assert exc_info.value.status == 400

    def test_negative_content_length_is_400(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            with socket.create_connection(
                ("127.0.0.1", st.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    b"Host: t\r\nContent-Length: -5\r\n\r\n"
                )
                reply = sock.recv(65536)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_non_integer_since_is_400(self, tmp_path):
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            with pytest.raises(ServiceError) as exc_info:
                client._request("GET", "/v1/jobs/x/events?since=abc")
            assert exc_info.value.status == 400

    def test_stale_persisted_record_cannot_brick_boot(self, tmp_path):
        """A persisted payload that no longer validates fails that one
        job on resume instead of preventing the server from starting."""
        with ServiceThread(_config(tmp_path), start_execution=False) as st:
            ServiceClient(port=st.port).submit(SPEC)
        # Rot the record the way a scheme rename would: it still parses
        # as a JobRecord, but its spec no longer validates.
        path = tmp_path / "queue" / f"{SPEC.key()}.json"
        record = json.loads(path.read_text())
        record["payload"]["spec"]["scheme"] = "no-such-scheme"
        path.write_text(json.dumps(record))
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            assert client.health()
            job = client.job(SPEC.key())["job"]
            assert job["state"] == "failed"
            assert "no-such-scheme" in job["error"]

    def test_terminal_retention_is_bounded_and_safe(self, tmp_path):
        other = ExperimentSpec("gzip", "BaseP", n_instructions=5000)
        config = _config(
            tmp_path, max_terminal_jobs=1, max_latency_samples=1
        )
        with ServiceThread(config) as st:
            client = ServiceClient(port=st.port)
            client.run(SPEC, timeout=120)
            client.run(other, timeout=120)
            assert len(client.jobs()) == 1  # oldest record expired
            telemetry = client.telemetry()
            # Expiring a done record is safe: the spec is still answered
            # from the content-addressed cache without re-running.
            resubmitted = client.submit(SPEC)
            assert resubmitted["submission"] == "cached"
            assert "result" in resubmitted
            assert telemetry["runner"]["simulated"] == 2
            assert telemetry["backend_latency"]["object"]["count"] == 1

    def test_evicted_result_triggers_rerun_not_null(self, tmp_path):
        """A done job whose result vanished from every tier re-runs on
        resubmission instead of answering "cached" with a null result."""
        with ServiceThread(_config(tmp_path)) as st:
            client = ServiceClient(port=st.port)
            client.run(SPEC, timeout=120)
            assert st.service is not None
            for shard in st.service.store._shards:
                with shard.lock:
                    shard.entries.clear()
            st.service.runner._memo.clear()
            for file in (tmp_path / "cache").rglob("*.json"):
                file.unlink()
            resubmitted = client.submit(SPEC)
            assert resubmitted["submission"] == "queued"
            payload = client.wait(SPEC.key(), timeout=120)
            assert payload["result"] is not None
            assert client.telemetry()["runner"]["simulated"] == 2
