"""Property-based invariants of the ICR cache under random access streams.

Hypothesis drives random load/store sequences through every scheme family
and checks the structural invariants that must hold at *every* step:

* link integrity — every replica's backlink points at a valid primary that
  lists it (drop mode), and every listed replica is a valid replica of the
  same block;
* role consistency — at most one valid primary per block address; replicas
  only ever live at configured distances from their primary's home set;
* conservation — hits + misses == accesses, successes <= attempts;
* protection consistency — replicated primaries carry the replicated-state
  protection kind, unreplicated ones the configured base kind.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import VictimPolicy
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config

ACCESSES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=511),  # block index
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=400,
)

SCHEMES = st.sampled_from(
    ["ICR-P-PS(S)", "ICR-P-PS(LS)", "ICR-ECC-PS(S)", "ICR-P-PP(LS)"]
)
POLICIES = st.sampled_from(list(VictimPolicy))
WINDOWS = st.sampled_from([0, 100, 1000, None])


def check_invariants(cache: ICRCache) -> None:
    config = cache.config
    n_sets = cache.geometry.n_sets
    allowed = set(config.all_replica_distances())
    primaries: dict[int, int] = {}
    for set_index, way, block in cache.iter_valid_blocks():
        assert cache.geometry.set_index(block.block_addr) % n_sets >= 0
        if block.is_replica:
            assert not block.dirty, "replicas are never dirty"
            primary = block.primary_ref
            if not config.leave_replicas_on_evict:
                assert primary is not None, "drop mode cannot orphan replicas"
            if primary is not None:
                assert primary.valid and not primary.is_replica
                assert primary.block_addr == block.block_addr
                assert block in primary.replica_refs
            home = cache.geometry.set_index(block.block_addr)
            assert (set_index - home) % n_sets in allowed
        else:
            assert block.block_addr not in primaries, "duplicate primary"
            primaries[block.block_addr] = set_index
            assert set_index == cache.geometry.set_index(block.block_addr)
            for replica in block.replica_refs:
                assert replica.valid and replica.is_replica
                assert replica.block_addr == block.block_addr
                assert replica.primary_ref is block
            expected = config.protection_for(bool(block.replica_refs))
            assert block.protection is expected


def run_stream(cache: ICRCache, accesses) -> None:
    for now, (block, is_write) in enumerate(accesses):
        cache.access(block * 64, is_write, now * 3)


class TestStructuralInvariants:
    @given(accesses=ACCESSES, scheme=SCHEMES, policy=POLICIES, window=WINDOWS)
    @settings(max_examples=120, deadline=None)
    def test_invariants_hold_under_random_streams(
        self, accesses, scheme, policy, window
    ):
        cache = ICRCache(
            make_config(scheme, decay_window=window, victim_policy=policy)
        )
        run_stream(cache, accesses)
        check_invariants(cache)

    @given(accesses=ACCESSES, scheme=SCHEMES)
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_in_leave_mode(self, accesses, scheme):
        cache = ICRCache(
            make_config(scheme, decay_window=0, leave_replicas_on_evict=True)
        )
        run_stream(cache, accesses)
        check_invariants(cache)

    @given(accesses=ACCESSES)
    @settings(max_examples=60, deadline=None)
    def test_invariants_with_two_replicas(self, accesses):
        cache = ICRCache(
            make_config(
                "ICR-P-PS(S)",
                decay_window=0,
                max_replicas=2,
                second_replica_distances=("N/4",),
            )
        )
        run_stream(cache, accesses)
        check_invariants(cache)
        for _, _, block in cache.iter_valid_blocks():
            if not block.is_replica:
                assert len(block.replica_refs) <= 2

    @given(accesses=ACCESSES)
    @settings(max_examples=60, deadline=None)
    def test_invariants_with_horizontal_replication(self, accesses):
        cache = ICRCache(
            make_config("ICR-P-PS(S)", decay_window=0, replica_distances=("0",))
        )
        run_stream(cache, accesses)
        check_invariants(cache)


class TestAccountingInvariants:
    @given(accesses=ACCESSES, scheme=SCHEMES)
    @settings(max_examples=60, deadline=None)
    def test_counter_conservation(self, accesses, scheme):
        cache = ICRCache(make_config(scheme, decay_window=0))
        run_stream(cache, accesses)
        s = cache.stats
        assert s.loads + s.stores == len(accesses)
        assert s.load_hits + s.load_misses == s.loads
        assert s.store_hits + s.store_misses == s.stores
        assert s.replication_successes <= s.replication_attempts
        assert s.second_replica_successes <= s.second_replica_attempts
        assert s.load_hits_with_replica <= s.load_hits

    @given(accesses=ACCESSES)
    @settings(max_examples=40, deadline=None)
    def test_same_stream_same_hits_across_protection(self, accesses):
        """Protection (parity vs ECC) must not change cache behaviour."""
        a = ICRCache(make_config("ICR-P-PS(S)", decay_window=0))
        b = ICRCache(make_config("ICR-ECC-PS(S)", decay_window=0))
        run_stream(a, accesses)
        run_stream(b, accesses)
        assert a.stats.hits == b.stats.hits
        assert a.stats.replication_successes == b.stats.replication_successes


class TestDataIntegrity:
    @given(accesses=ACCESSES)
    @settings(max_examples=30, deadline=None)
    def test_tracked_words_match_golden_without_faults(self, accesses):
        """With no injector, stored words always verify and match golden."""
        cache = ICRCache(make_config("ICR-P-PS(S)", decay_window=0, track_data=True))
        run_stream(cache, accesses)
        for _, _, block in cache.iter_valid_blocks():
            if block.words is None:
                continue
            for word, golden in zip(block.words, block.golden):
                outcome = word.read()
                assert not outcome.error_detected
                assert outcome.data == golden

    @given(accesses=ACCESSES)
    @settings(max_examples=30, deadline=None)
    def test_no_error_counters_without_injector(self, accesses):
        cache = ICRCache(make_config("ICR-P-PS(S)", decay_window=0, track_data=True))
        run_stream(cache, accesses)
        s = cache.stats
        assert s.errors_injected == 0
        assert s.load_errors_detected == 0
        assert s.silent_corruptions == 0
        assert s.load_errors_unrecoverable == 0
