"""Equivalence properties between configurations that must not differ.

The strongest correctness check for the ICR cache: with replication
disabled it must behave *bit-for-bit* like a plain LRU cache (the paper's
Base schemes are "a normal dL1 cache"), and configurations that differ
only in metadata (protection kind, lookup mode) must produce identical
hit/miss streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_assoc import CacheGeometry, SetAssociativeCache
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config

ACCESSES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=511),
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


class TestBaseEqualsPlainCache:
    @given(accesses=ACCESSES)
    @settings(max_examples=80, deadline=None)
    def test_basep_matches_plain_lru_cache(self, accesses):
        icr = ICRCache(make_config("BaseP"))
        plain = SetAssociativeCache(CacheGeometry(16 * 1024, 4, 64))
        for now, (block, is_write) in enumerate(accesses):
            addr = block * 64
            outcome = icr.access(addr, is_write, now)
            plain_hit = plain.access(addr, is_write, now)
            assert outcome.hit == plain_hit
        assert icr.stats.hits == plain.stats.hits
        assert icr.stats.misses == plain.stats.misses
        assert icr.stats.writebacks == plain.stats.writebacks
        # Identical resident sets.
        icr_contents = {
            (si, b.block_addr, b.dirty) for si, _, b in icr.iter_valid_blocks()
        }
        plain_contents = {
            (si, b.block_addr, b.dirty) for si, _, b in plain.iter_valid_blocks()
        }
        assert icr_contents == plain_contents

    @given(accesses=ACCESSES)
    @settings(max_examples=40, deadline=None)
    def test_basep_and_baseecc_same_behaviour(self, accesses):
        """Protection kind affects latency/energy, never cache state."""
        p = ICRCache(make_config("BaseP"))
        e = ICRCache(make_config("BaseECC"))
        for now, (block, is_write) in enumerate(accesses):
            op = p.access(block * 64, is_write, now)
            oe = e.access(block * 64, is_write, now)
            assert op.hit == oe.hit
            if not is_write and op.hit:
                # ECC loads pay the extra verification cycle.
                assert oe.latency == op.latency + 1


class TestLookupModeEquivalence:
    @given(accesses=ACCESSES)
    @settings(max_examples=40, deadline=None)
    def test_ps_and_pp_identical_contents(self, accesses):
        """PS vs PP changes load latency and reads, not placement."""
        ps = ICRCache(make_config("ICR-P-PS(S)", decay_window=0))
        pp = ICRCache(make_config("ICR-P-PP(S)", decay_window=0))
        for now, (block, is_write) in enumerate(accesses):
            a = ps.access(block * 64, is_write, now)
            b = pp.access(block * 64, is_write, now)
            assert a.hit == b.hit
        assert ps.stats.replication_successes == pp.stats.replication_successes
        assert ps.stats.load_hits_with_replica == pp.stats.load_hits_with_replica

    @given(accesses=ACCESSES)
    @settings(max_examples=40, deadline=None)
    def test_track_data_does_not_change_timing_state(self, accesses):
        """Bit-accurate storage is observational: same hits, same replicas."""
        lean = ICRCache(make_config("ICR-P-PS(S)", decay_window=0))
        fat = ICRCache(make_config("ICR-P-PS(S)", decay_window=0, track_data=True))
        for now, (block, is_write) in enumerate(accesses):
            a = lean.access(block * 64, is_write, now)
            b = fat.access(block * 64, is_write, now)
            assert a.hit == b.hit
            assert a.latency == b.latency
        assert lean.stats.replication_successes == fat.stats.replication_successes
        assert lean.stats.misses == fat.stats.misses
