"""Tests for software-controlled replication (Section 6 future work)."""

import pytest

from repro.core.config import variant
from repro.core.hints import AddressRange, ReplicationHints
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config

N_SETS = 64


def addr(set_index: int, tag: int = 0) -> int:
    return (tag * N_SETS + set_index) * 64


def make(hints, scheme="ICR-P-PS(S)", **kwargs):
    kwargs.setdefault("decay_window", 0)
    kwargs.setdefault("replicate_into_invalid", True)
    config = variant(make_config(scheme, **kwargs), hints=hints)
    return ICRCache(config)


class TestAddressRange:
    def test_contains_block(self):
        r = AddressRange(0x1000, 0x2000)
        assert r.contains_block(0x1000 // 64, 64)
        assert r.contains_block((0x2000 - 64) // 64, 64)
        assert not r.contains_block(0x2000 // 64, 64)
        assert not r.contains_block((0x1000 - 64) // 64, 64)

    def test_partial_overlap_counts(self):
        r = AddressRange(0x1020, 0x1030)  # inside one line
        assert r.contains_block(0x1000 // 64, 64)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            AddressRange(10, 10)
        with pytest.raises(ValueError):
            AddressRange(-1, 10)


class TestDirectives:
    def test_never_blocks_replication(self):
        hints = ReplicationHints().never(addr(0), addr(0) + 64)
        cache = make(hints)
        cache.access(addr(0), True, 0)
        assert not cache.probe(cache.geometry.block_addr(addr(0))).has_replica
        assert cache.stats.replication_attempts == 0

    def test_unhinted_lines_replicate_normally(self):
        hints = ReplicationHints().never(addr(0), addr(0) + 64)
        cache = make(hints)
        cache.access(addr(1), True, 0)
        assert cache.probe(cache.geometry.block_addr(addr(1))).has_replica

    def test_count_zero_equals_never(self):
        hints = ReplicationHints().replicas(addr(0), addr(0) + 64, 0)
        cache = make(hints)
        cache.access(addr(0), True, 0)
        assert not cache.probe(cache.geometry.block_addr(addr(0))).has_replica

    def test_count_two_places_second_replica(self):
        hints = ReplicationHints().replicas(addr(0), addr(0) + 64, 2)
        cache = make(hints)
        cache.access(addr(0), True, 0)
        primary = cache.probe(cache.geometry.block_addr(addr(0)))
        assert len(primary.replica_refs) == 2
        assert cache.stats.second_replica_successes == 1

    def test_eager_replicates_on_fill_under_s_trigger(self):
        hints = ReplicationHints().eager(addr(0), addr(0) + 64)
        cache = make(hints)
        cache.access(addr(0), False, 0)  # a load miss, S trigger
        assert cache.probe(cache.geometry.block_addr(addr(0))).has_replica

    def test_eager_does_not_affect_other_lines(self):
        hints = ReplicationHints().eager(addr(0), addr(0) + 64)
        cache = make(hints)
        cache.access(addr(1), False, 0)
        assert not cache.probe(cache.geometry.block_addr(addr(1))).has_replica

    def test_eager_is_inert_on_base_schemes(self):
        hints = ReplicationHints().eager(addr(0), addr(0) + 64)
        cache = make(hints, scheme="BaseP")
        cache.access(addr(0), False, 0)
        assert cache.stats.replication_attempts == 0

    def test_directives_compose(self):
        hints = (
            ReplicationHints()
            .never(addr(0), addr(0) + 64)
            .eager(addr(1), addr(1) + 64)
            .replicas(addr(2), addr(2) + 64, 2)
        )
        cache = make(hints)
        cache.access(addr(0), True, 0)
        cache.access(addr(1), False, 1)
        cache.access(addr(2), True, 2)
        g = cache.geometry.block_addr
        assert not cache.probe(g(addr(0))).has_replica
        assert cache.probe(g(addr(1))).has_replica
        assert len(cache.probe(g(addr(2))).replica_refs) == 2

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            ReplicationHints().replicas(0, 64, 3)

    def test_describe_lists_directives(self):
        hints = ReplicationHints().never(0, 64).eager(64, 128).replicas(128, 192, 2)
        text = hints.describe()
        assert "never" in text and "eager" in text and "count=2" in text
        assert ReplicationHints().describe() == "(no directives)"


class TestEndToEnd:
    def test_hints_change_reliability_coverage(self):
        """Protecting a hot region eagerly raises loads-with-replica."""
        from repro.core.config import variant as cfg_variant
        from repro.harness.experiment import run_experiment
        from repro.harness.spec import ExperimentSpec
        from repro.workloads.generator import HOT_BASE

        plain_cfg = make_config("ICR-P-PS(S)", decay_window=1000)
        hinted_cfg = cfg_variant(
            plain_cfg,
            hints=ReplicationHints().eager(HOT_BASE, HOT_BASE + (1 << 26)),
        )
        plain = run_experiment(
            ExperimentSpec.from_kwargs("gzip", plain_cfg, n_instructions=40_000)
        )
        hinted = run_experiment(
            ExperimentSpec.from_kwargs("gzip", hinted_cfg, n_instructions=40_000)
        )
        # The eager hint fires extra fill-time attempts for the hot region;
        # coverage must not regress (placement success still depends on the
        # availability of dead lines).
        assert (
            hinted.dl1["replication_attempts"] > plain.dl1["replication_attempts"]
        )
        assert hinted.loads_with_replica >= plain.loads_with_replica - 0.02
