"""Tests for the package's public API surface."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_entrypoints_importable(self):
        assert callable(repro.run_experiment)
        assert callable(repro.make_cache)
        assert callable(repro.make_config)
        assert callable(repro.normalized_cycles)

    def test_scheme_roster(self):
        assert len(repro.ALL_SCHEMES) == 10
        assert set(repro.HEADLINE_SCHEMES) <= set(repro.ALL_SCHEMES)

    def test_benchmark_roster(self):
        assert len(repro.BENCHMARKS) == 8
        assert set(repro.BENCHMARKS) <= set(repro.PROFILES)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_import(self):
        import repro.baselines
        import repro.cache
        import repro.coding
        import repro.core
        import repro.cpu
        import repro.energy
        import repro.errors
        import repro.harness
        import repro.reliability
        import repro.workloads

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"


class TestFigureRegistry:
    def test_extension_figures_registered(self):
        from repro.harness.figures import ALL_FIGURES

        for key in (
            "ablation_pipeline",
            "ablation_scrubbing",
            "ablation_replacement",
            "ablation_write_buffer",
            "ablation_power2",
            "ablation_error_models",
            "comparison_rcache",
            "comparison_victim_cache",
            "comparison_area",
        ):
            assert key in ALL_FIGURES

    def test_comparison_area_runs_instantly(self):
        from repro.harness.figures import comparison_area

        result = comparison_area()
        assert len(result.rows) == 4

    def test_power2_ablation_smoke(self):
        from repro.harness.figures import ablation_power2

        result = ablation_power2(n=8_000)
        assert result.column("max_attempts") == [1, 2, 3, 5]
