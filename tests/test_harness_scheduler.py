"""Tests for the work-stealing campaign scheduler.

The contract under test is the one DESIGN.md §12 argues for:

* the stealing scheduler's final report is **byte-identical** to the
  round scheduler's — across worker counts, with failing trials, under
  adaptive stopping, and through interrupt/resume in either direction;
* once a cell converges it schedules zero further trials (queued work
  is revoked mid-flight, staged speculative results are discarded);
* two engines cooperating through a share directory partition the cell
  grid via file leases, adopt each other's published records, take over
  stale leases, and still render the identical report;
* the checkpoint cadence batches writes instead of serializing the
  record set after every trial.
"""

import json
import time

import pytest

from repro.harness.cache import FileLease, ResultCache
from repro.harness.campaign import (
    CampaignConfig,
    CampaignEngine,
    create_engine,
)
from repro.harness.runner import Job, ParallelRunner, RunnerError
from repro.harness.scheduler import StealingCampaignEngine
from repro.harness.spec import ExperimentSpec

SMALL = dict(
    benchmarks=("gzip",),
    schemes=("BaseP", "ICR-P-PS(S)"),
    error_rates=(1e-2,),
    trials=6,
    batch_size=3,
    n_instructions=3_000,
)

#: Adaptive-stopping variant: a huge target makes every cell converge at
#: min_trials, so speculative lookahead work must get cancelled.
ADAPTIVE = dict(
    SMALL,
    trials=30,
    batch_size=3,
    min_trials=3,
    target_half_width=0.9,
)


def small_config(**over):
    merged = dict(SMALL)
    merged.update(over)
    return CampaignConfig(**merged)


def round_report(config, **runner_kwargs):
    return CampaignEngine(config, ParallelRunner(**runner_kwargs)).run()


class TestByteIdenticalReports:
    def test_serial_matches_round(self):
        config = small_config()
        ref = round_report(config, jobs=1)
        out = create_engine(
            config, ParallelRunner(jobs=1), scheduler="stealing"
        ).run()
        assert ref.to_json() == out.to_json()

    def test_pool_workers_match_round(self):
        config = small_config(trials=4, batch_size=2)
        ref = round_report(config, jobs=1)
        for workers in (2, 3):
            out = create_engine(
                config,
                ParallelRunner(jobs=workers),
                scheduler="stealing",
                workers=workers,
            ).run()
            assert ref.to_json() == out.to_json(), f"workers={workers}"

    def test_adaptive_stopping_matches_round(self):
        config = small_config(**{k: ADAPTIVE[k] for k in ADAPTIVE})
        ref = round_report(config, jobs=1)
        engine = create_engine(
            config, ParallelRunner(jobs=1), scheduler="stealing"
        )
        out = engine.run()
        assert ref.to_json() == out.to_json()
        assert all(o.stopped_early for o in out.outcomes)

    def test_failing_trials_match_round(self):
        # ICR schemes accept the knobs, so the bogus knob crashes every
        # ICR trial attempt in the worker while BaseP sails through —
        # the registry metadata strips it for Base schemes.
        config = small_config(
            trials=3, batch_size=3, scheme_kwargs={"nosuch_knob": 1}
        )
        ref = round_report(config, jobs=1, retries=0)
        out = create_engine(
            config,
            ParallelRunner(jobs=1, retries=0),
            scheduler="stealing",
        ).run()
        assert ref.to_json() == out.to_json()
        failed = {
            o.cell.scheme: o.failed_attempts() for o in out.outcomes
        }
        assert failed["BaseP"] == 0
        assert failed["ICR-P-PS(S)"] > 0

    def test_lookahead_depths_identical(self):
        config = small_config(**{k: ADAPTIVE[k] for k in ADAPTIVE})
        ref = round_report(config, jobs=1)
        for lookahead in (0, 1, 4):
            out = create_engine(
                config,
                ParallelRunner(jobs=1),
                scheduler="stealing",
                lookahead_batches=lookahead,
            ).run()
            assert ref.to_json() == out.to_json(), f"lookahead={lookahead}"


class TestInterruptResume:
    def test_stealing_resumes_stealing(self, tmp_path):
        config = small_config()
        ref = round_report(config, jobs=1)
        ck = tmp_path / "ck.json"
        first = create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            checkpoint_path=ck,
        )
        partial = first.run(max_trials=5)
        assert not partial.complete
        second = create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            checkpoint_path=ck,
        )
        assert second.resumed
        assert ref.to_json() == second.run().to_json()

    def test_cross_scheduler_resume(self, tmp_path):
        # A stealing checkpoint can land mid-batch; the round engine
        # must refill to the same batch grid, and vice versa.
        config = small_config()
        ref = round_report(config, jobs=1)
        ck = tmp_path / "ck.json"
        create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            checkpoint_path=ck,
        ).run(max_trials=5)
        finished_by_round = CampaignEngine(
            config, ParallelRunner(jobs=1), checkpoint_path=ck
        ).run()
        assert ref.to_json() == finished_by_round.to_json()

        ck2 = tmp_path / "ck2.json"
        CampaignEngine(
            config, ParallelRunner(jobs=1), checkpoint_path=ck2
        ).run(max_rounds=1)
        finished_by_stealing = create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            checkpoint_path=ck2,
        ).run()
        assert ref.to_json() == finished_by_stealing.to_json()

    def test_adaptive_resume_identical(self, tmp_path):
        config = small_config(**{k: ADAPTIVE[k] for k in ADAPTIVE})
        ref = round_report(config, jobs=1)
        ck = tmp_path / "ck.json"
        create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            checkpoint_path=ck,
        ).run(max_trials=2)
        out = create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            checkpoint_path=ck,
        ).run()
        assert ref.to_json() == out.to_json()


class TestConvergenceCancellation:
    def test_converged_cell_schedules_nothing_further(self):
        config = small_config(**{k: ADAPTIVE[k] for k in ADAPTIVE})
        engine = create_engine(
            config, ParallelRunner(jobs=1), scheduler="stealing"
        )
        engine.run()
        # Replay the scheduler's event trace: once a cell's "cell-done"
        # event fires, no submit event for it may follow.
        done = set()
        for event in engine.events:
            if event[0] == "cell-done":
                done.add(event[1])
            elif event[0] == "submit":
                assert event[1] not in done, (
                    f"trial submitted for converged cell {event[1]}"
                )

    def test_speculative_work_is_cancelled_and_discarded(self):
        config = small_config(**{k: ADAPTIVE[k] for k in ADAPTIVE})
        engine = create_engine(
            config, ParallelRunner(jobs=1), scheduler="stealing"
        )
        engine.run()
        t = engine.telemetry()
        # Every cell stops at min_trials=3 out of 30, so lookahead work
        # must have been revoked; nothing revoked may reach the report.
        assert t["speculative_submits"] > 0
        assert t["cancelled_savings"] > 0
        assert t["trials_committed"] == sum(
            len(o.records) for o in engine.outcomes.values()
        )

    def test_uncommitted_speculation_invisible_to_report(self):
        # The stopping decision must be a function of committed records
        # only: the stealing run commits exactly the round run's set.
        config = small_config(**{k: ADAPTIVE[k] for k in ADAPTIVE})
        ref = CampaignEngine(config, ParallelRunner(jobs=1))
        ref.run()
        out = create_engine(
            config, ParallelRunner(jobs=1), scheduler="stealing"
        )
        out.run()
        for cell in config.cells():
            ref_keys = [
                (r.index, r.attempt) for r in ref.outcomes[cell].records
            ]
            out_keys = [
                (r.index, r.attempt) for r in out.outcomes[cell].records
            ]
            assert sorted(ref_keys) == sorted(out_keys)


class TestCheckpointCadence:
    def test_writes_batched_behind_dirty_threshold(self, tmp_path):
        config = small_config()
        engine = CampaignEngine(
            config,
            ParallelRunner(jobs=1),
            checkpoint_path=tmp_path / "ck.json",
            checkpoint_every_trials=1_000,
            checkpoint_interval=3_600.0,
        )
        engine.run()
        # Neither threshold fires at this scale: one forced flush only.
        assert engine.checkpoint_writes == 1

    def test_every_trial_cadence_upper_bound(self, tmp_path):
        config = small_config()
        engine = create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            checkpoint_path=tmp_path / "ck.json",
            checkpoint_every_trials=1,
            checkpoint_interval=0.0,
        )
        engine.run()
        total = sum(len(o.records) for o in engine.outcomes.values())
        assert 1 <= engine.checkpoint_writes <= total + 1

    def test_forced_flush_makes_resume_exact(self, tmp_path):
        config = small_config()
        ck = tmp_path / "ck.json"
        engine = create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            checkpoint_path=ck,
            checkpoint_every_trials=1_000_000,
            checkpoint_interval=3_600.0,
        )
        engine.run(max_trials=4)
        payload = json.loads(ck.read_text())
        persisted = sum(len(v) for v in payload["cells"].values())
        committed = sum(len(o.records) for o in engine.outcomes.values())
        assert persisted == committed == 4


class TestMultiHostCooperation:
    def test_two_engines_share_and_agree(self, tmp_path):
        config = small_config(trials=4, batch_size=2)
        ref = round_report(config, jobs=1)
        cache = ResultCache(tmp_path / "cache")
        share = tmp_path / "share"
        kwargs = dict(
            scheduler="stealing",
            share_dir=share,
            coop_interval=0.01,
            lease_ttl=10.0,
        )
        a = create_engine(config, ParallelRunner(jobs=1, cache=cache), **kwargs)
        b = create_engine(config, ParallelRunner(jobs=1, cache=cache), **kwargs)
        report_a = a.run()
        report_b = b.run()
        assert ref.to_json() == report_a.to_json()
        assert ref.to_json() == report_b.to_json()
        # The second engine found everything published and adopted it.
        assert b.telemetry()["records_adopted"] == sum(
            len(o.records) for o in b.outcomes.values()
        )

    def test_interleaved_engines_partition_cells(self, tmp_path):
        # Drive two engines in alternating slices against one share dir;
        # leases must keep them off each other's cells while both are
        # mid-flight, and the union must converge to the full report.
        config = small_config(trials=4, batch_size=2)
        ref = round_report(config, jobs=1)
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            scheduler="stealing",
            share_dir=tmp_path / "share",
            coop_interval=0.0,
            lease_ttl=30.0,
        )
        a = create_engine(config, ParallelRunner(jobs=1, cache=cache), **kwargs)
        b = create_engine(config, ParallelRunner(jobs=1, cache=cache), **kwargs)
        for _ in range(40):
            a.run(max_trials=1)
            b.run(max_trials=1)
            if a.report().complete and b.report().complete:
                break
        assert ref.to_json() == a.report().to_json()
        assert ref.to_json() == b.report().to_json()

    def test_stale_lease_takeover(self, tmp_path):
        config = small_config(trials=2, batch_size=2, schemes=("BaseP",))
        share = tmp_path / "share"
        # A dead peer holds every cell: fabricate unrenewed lease files.
        dead = create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            share_dir=share,
            lease_ttl=0.05,
        )
        (share / "leases").mkdir(parents=True)
        (share / "cells").mkdir(parents=True)
        for cell in config.cells():
            lease = FileLease(
                share / "leases" / f"{dead._cell_hash(cell)}.lease",
                "ghost:1:deadbeef",
                ttl=0.05,
            )
            assert lease.acquire()
        time.sleep(0.1)  # let the ghost's leases go stale
        engine = create_engine(
            config,
            ParallelRunner(jobs=1),
            scheduler="stealing",
            share_dir=share,
            lease_ttl=0.05,
            coop_interval=0.0,
        )
        report = engine.run()
        assert report.complete
        assert engine.lease_takeovers == len(config.cells())


class TestFileLease:
    def test_exclusive_acquire_and_release(self, tmp_path):
        path = tmp_path / "x.lease"
        first = FileLease(path, "owner-a", ttl=30.0)
        second = FileLease(path, "owner-b", ttl=30.0)
        assert first.acquire()
        assert first.held()
        assert not second.acquire()
        assert second.holder() == "owner-a"
        first.release()
        assert second.acquire()
        assert second.held()

    def test_reacquire_is_idempotent(self, tmp_path):
        lease = FileLease(tmp_path / "x.lease", "owner-a")
        assert lease.acquire()
        assert lease.acquire()

    def test_stale_lease_broken(self, tmp_path):
        path = tmp_path / "x.lease"
        first = FileLease(path, "owner-a", ttl=0.05)
        second = FileLease(path, "owner-b", ttl=0.05)
        assert first.acquire()
        time.sleep(0.1)
        assert second.is_stale()
        assert second.acquire()
        assert second.holder() == "owner-b"
        # The usurped owner must not clobber the new lease.
        first.release()
        assert second.held()

    def test_renew_keeps_lease_fresh(self, tmp_path):
        lease = FileLease(tmp_path / "x.lease", "owner-a", ttl=0.2)
        assert lease.acquire()
        for _ in range(3):
            time.sleep(0.08)
            assert lease.renew()
        assert not lease.is_stale()


class TestRunnerSession:
    def _job(self, n=2_000, seed=0):
        return Job.from_spec(
            ExperimentSpec(
                "gzip", "BaseP", n_instructions=n, trace_seed=seed
            )
        )

    def test_submit_and_harvest_serial(self):
        runner = ParallelRunner(jobs=1)
        with runner.session() as session:
            handles = [self._job(seed=s) for s in (0, 1)]
            submitted = [session.submit(job, tag=i) for i, job in enumerate(handles)]
            seen = []
            while (handle := session.next_completed()) is not None:
                assert handle.ok
                seen.append(handle.tag)
            assert sorted(seen) == [0, 1]
            assert all(h.done for h in submitted)

    def test_cache_hit_completes_at_submit(self):
        runner = ParallelRunner(jobs=1)
        with runner.session() as session:
            session.submit(self._job())
            first = session.next_completed()
            assert first is not None and not first.cached
            again = session.submit(self._job())
            assert again.done and again.cached
            assert session.next_completed() is again

    def test_cancel_queued_job(self):
        runner = ParallelRunner(jobs=1)
        with runner.session() as session:
            keep = session.submit(self._job(seed=0))
            drop = session.submit(self._job(seed=1))
            assert session.cancel(drop)
            assert drop.cancelled and drop.done
            assert runner.stats.cancelled == 1
            done = session.next_completed()
            assert done is keep
            assert session.next_completed() is None

    def test_cannot_cancel_finished_job(self):
        runner = ParallelRunner(jobs=1)
        with runner.session() as session:
            handle = session.submit(self._job())
            assert session.next_completed() is handle
            assert not session.cancel(handle)

    def test_failure_surfaces_runner_error(self):
        runner = ParallelRunner(jobs=1, retries=0)
        bad = Job.from_spec(
            ExperimentSpec(
                "gzip",
                "ICR-P-PS(S)",
                n_instructions=2_000,
                scheme_kwargs={"nosuch_knob": 1},
            )
        )
        with runner.session() as session:
            session.submit(bad)
            handle = session.next_completed()
            assert handle is not None and not handle.ok
            assert isinstance(handle.result, RunnerError)

    def test_pool_results_match_serial(self):
        jobs = [self._job(seed=s) for s in range(3)]
        serial = ParallelRunner(jobs=1).run(jobs)
        runner = ParallelRunner(jobs=2)
        with runner.session(workers=2) as session:
            by_tag = {}
            for i, job in enumerate(jobs):
                session.submit(job, tag=i)
            while (handle := session.next_completed()) is not None:
                by_tag[handle.tag] = handle.result
        assert [by_tag[i] for i in range(3)] == serial


class TestBackendAutoDispatch:
    def test_auto_resolves_per_cell(self):
        # Error-injection cells need the object kernel (the array tiers
        # require error_rate == 0), so "auto" at a nonzero error rate
        # must fall back per cell rather than refusing the campaign.
        config = small_config(backend="auto")
        for cell in config.cells():
            assert config.trial_backend(cell) == "object"
            assert config.trial_spec(cell, 0, 0).backend == "object"

    def test_auto_prefers_array_when_supported(self):
        config = CampaignConfig(
            benchmarks=("gzip",),
            schemes=("BaseP",),
            error_rates=(0.0,),
            trials=2,
            n_instructions=3_000,
            backend="auto",
        )
        cell = config.cells()[0]
        assert config.trial_mode(cell) != "object"
        assert config.trial_backend(cell) == "array"

    def test_auto_report_matches_object_backend(self):
        # Error-injection campaigns resolve every cell to the object
        # kernel, so "auto" must not perturb the campaign digest's
        # trial population — only the digest itself differs.
        base = small_config(trials=2, batch_size=2)
        auto = small_config(trials=2, batch_size=2, backend="auto")
        ref = round_report(base, jobs=1)
        out = create_engine(
            auto, ParallelRunner(jobs=1), scheduler="stealing"
        ).run()
        ref_cells = ref.to_dict()["cells"]
        out_cells = out.to_dict()["cells"]
        assert ref_cells == out_cells


class TestEngineFactory:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="round"):
            create_engine(small_config(), scheduler="fifo")

    def test_factory_builds_expected_types(self):
        assert isinstance(
            create_engine(small_config(), scheduler="round"), CampaignEngine
        )
        engine = create_engine(small_config(), scheduler="stealing")
        assert isinstance(engine, StealingCampaignEngine)
        assert engine.SCHEDULER == "stealing"

    def test_telemetry_shape(self):
        engine = create_engine(
            small_config(trials=2, batch_size=2),
            ParallelRunner(jobs=1),
            scheduler="stealing",
        )
        engine.run()
        t = engine.telemetry()
        for key in (
            "scheduler",
            "trials_committed",
            "checkpoint_writes",
            "utilization",
            "steals",
            "speculative_submits",
            "cancelled_savings",
            "discarded_results",
            "records_adopted",
            "helper_trials",
            "lease_takeovers",
            "backend_latency",
            "runner",
        ):
            assert key in t, key
        assert t["scheduler"] == "stealing"
        assert 0.0 <= t["utilization"] <= 1.0
        for summary in t["backend_latency"].values():
            assert summary["count"] == sum(
                summary["histogram"]["counts"]
            )
