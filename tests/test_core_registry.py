"""The scheme registry: catalog, normalization and end-to-end builds.

The registry is the single resolution point for scheme names — specs,
the result cache, the campaign engine and the CLI all go through it —
so these tests pin three contracts:

* name normalization is idempotent, spelling-insensitive and fails
  loudly (listing the catalog) on unknown input;
* the static metadata agrees with what the built models actually do
  (protection kinds, load-hit latencies, who replicates);
* every registered scheme — the paper family *and* the rcache /
  victim-cache baselines — runs end-to-end through ExperimentSpec,
  produces a round-trippable SimulationResult, and survives a tiny
  fault-injection campaign.
"""

import pytest

from repro.coding.protection import ProtectionKind
from repro.core.config import ICRConfig
from repro.core.registry import (
    build_dl1,
    is_registered,
    normalize_scheme_name,
    registered_schemes,
    scheme_entry,
    scheme_info,
)
from repro.core.schemes import ALL_SCHEMES
from repro.harness.experiment import SimulationResult, run_experiment
from repro.harness.spec import ExperimentSpec

N = 4_000


class TestCatalog:
    def test_paper_schemes_all_registered_in_paper_order(self):
        names = registered_schemes()
        assert names[: len(ALL_SCHEMES)] == tuple(ALL_SCHEMES)

    def test_extras_and_baselines_registered(self):
        names = registered_schemes()
        for extra in ("BaseECC-spec", "BaseP-WT", "rcache", "victim-cache"):
            assert extra in names

    def test_kinds_partition_the_catalog(self):
        kinds = {name: scheme_info(name).kind for name in registered_schemes()}
        assert set(kinds.values()) == {"base", "icr", "baseline"}
        assert kinds["BaseP"] == "base"
        assert kinds["ICR-P-PS(S)"] == "icr"
        assert kinds["rcache"] == "baseline"
        assert kinds["victim-cache"] == "baseline"

    def test_entry_and_info_agree(self):
        for name in registered_schemes():
            assert scheme_entry(name).info is scheme_info(name)


class TestNormalization:
    def test_canonical_names_are_fixed_points(self):
        for name in registered_schemes():
            assert normalize_scheme_name(name) == name

    def test_idempotent(self):
        for raw in ("icr-p-ps (s)", "Base P", "R_CACHE", "Victim Cache"):
            once = normalize_scheme_name(raw)
            assert normalize_scheme_name(once) == once

    @pytest.mark.parametrize(
        "raw, canonical",
        [
            ("icr-p-ps(s)", "ICR-P-PS(S)"),
            ("ICR_ECC_PP(LS)", "ICR-ECC-PP(LS)"),
            ("basep", "BaseP"),
            ("base ecc", "BaseECC"),
            ("r-cache", "rcache"),
            ("rc", "rcache"),
            ("victimcache", "victim-cache"),
            ("VC", "victim-cache"),
        ],
    )
    def test_spellings_and_aliases(self, raw, canonical):
        assert normalize_scheme_name(raw) == canonical

    def test_unknown_name_raises_listing_the_catalog(self):
        with pytest.raises(ValueError) as exc:
            normalize_scheme_name("nosuch-scheme")
        message = str(exc.value)
        assert "nosuch-scheme" in message
        for name in registered_schemes():
            assert name in message

    def test_is_registered(self):
        assert is_registered("ICR-P-PS(S)")
        assert is_registered("vc")
        assert not is_registered("nosuch-scheme")


class TestMetadataConsistency:
    """The static catalog must match what the built models really do."""

    def test_icr_family_metadata_matches_built_config(self):
        for name in ALL_SCHEMES + ("BaseECC-spec", "BaseP-WT"):
            info = scheme_info(name)
            cache = build_dl1(name)
            protection = cache.protection_policy
            assert info.protection is protection.unreplicated, name
            assert (
                info.load_hit_latency
                == protection.load_hit_latency_unreplicated
            ), name
            if info.replicates:
                assert (
                    info.load_hit_latency_replicated
                    == protection.load_hit_latency_replicated
                ), name
            assert info.replicates == cache._replicates, name
            assert info.accepts_icr_knobs == (info.kind == "icr"), name

    def test_baseline_metadata(self):
        for name in ("rcache", "victim-cache"):
            info = scheme_info(name)
            assert info.protection is ProtectionKind.PARITY
            assert info.load_hit_latency == 1
            assert not info.accepts_icr_knobs
            assert info.energy_note

    def test_baseline_models_expose_the_dl1_protocol(self):
        for name in ("rcache", "victim-cache"):
            model = build_dl1(name)
            assert model.config.name == name
            for attr in ("stats", "geometry", "write_policy"):
                assert hasattr(model, attr), (name, attr)
            for method in ("access", "set_evict_hook"):
                assert callable(getattr(model, method)), (name, method)
            # Fault injection attaches to the real array underneath.
            assert model.injection_target is not model
            assert model.injection_target.config.track_data is False


class TestBuildErrors:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="registered schemes"):
            build_dl1("nosuch-scheme")

    def test_unknown_knob_names_the_scheme(self):
        with pytest.raises(TypeError, match=r"ICR-P-PS\(S\)"):
            build_dl1("ICR-P-PS(S)", nosuch_knob=1)
        with pytest.raises(TypeError, match="rcache"):
            build_dl1("rcache", nosuch_knob=1)


class TestEverySchemeEndToEnd:
    """name -> spec -> cache -> SimulationResult -> dict round trip."""

    @pytest.mark.parametrize("name", registered_schemes())
    def test_round_trip(self, name):
        spec = ExperimentSpec("gzip", name, n_instructions=N)
        assert spec.scheme == name  # already canonical
        result = run_experiment(spec)
        assert result.scheme == name
        assert result.instructions == N
        assert result.cycles > 0
        recovered = SimulationResult.from_dict(result.to_dict())
        assert recovered == result

    def test_alias_spec_shares_identity_with_canonical(self):
        via_alias = ExperimentSpec("gzip", "r_cache", n_instructions=N)
        canonical = ExperimentSpec("gzip", "rcache", n_instructions=N)
        assert via_alias == canonical
        assert via_alias.key() == canonical.key()

    def test_spec_rejects_unknown_scheme_at_construction(self):
        with pytest.raises(ValueError, match="registered schemes"):
            ExperimentSpec("gzip", "nosuch-scheme")

    def test_prebuilt_config_bypasses_the_registry(self):
        from repro.core.schemes import make_config

        config = make_config("ICR-P-PS(S)")
        spec = ExperimentSpec("gzip", config, n_instructions=N)
        assert isinstance(spec.scheme, ICRConfig)


class TestBaselineCampaign:
    def test_baselines_run_through_a_tiny_campaign(self):
        from repro.harness.campaign import CampaignConfig, run_campaign

        config = CampaignConfig(
            benchmarks=("gzip",),
            schemes=("rcache", "victim-cache"),
            error_rates=(1e-2,),
            trials=2,
            batch_size=2,
            n_instructions=3_000,
        )
        report = run_campaign(config)
        assert report.complete
        assert len(report.outcomes) == 2
        for outcome in report.outcomes:
            assert len(outcome.ok_records()) == 2, outcome.cell
            summary = outcome.summary(config)
            assert summary["trials_ok"] == 2
