"""Tests for the CACTI-style energy model and the run accounting."""

import pytest

from repro.cache.set_assoc import CacheGeometry
from repro.cache.stats import HierarchyStats
from repro.energy.accounting import EnergyParams, energy_of
from repro.energy.cacti import access_energy, l1_l2_energies

L1 = CacheGeometry(16 * 1024, 4, 64)
L2 = CacheGeometry(256 * 1024, 4, 64)


class TestCactiModel:
    def test_reference_l1_in_expected_band(self):
        e = access_energy(L1)
        # Anchored near CACTI 3.0 @0.18um for a 16KB 4-way array.
        assert 0.2 < e.read_nj < 0.8

    def test_l2_costs_more_than_l1(self):
        e_l1, e_l2 = l1_l2_energies(L1, L2)
        assert 2.0 < e_l2 / e_l1 < 12.0

    def test_writes_cost_more_than_reads(self):
        e = access_energy(L1)
        assert e.write_nj > e.read_nj

    def test_energy_monotone_in_size(self):
        small = access_energy(CacheGeometry(8 * 1024, 4, 64))
        large = access_energy(CacheGeometry(64 * 1024, 4, 64))
        assert large.read_nj > small.read_nj

    def test_energy_monotone_in_associativity(self):
        low = access_energy(CacheGeometry(16 * 1024, 2, 64))
        high = access_energy(CacheGeometry(16 * 1024, 8, 64))
        assert high.read_nj > low.read_nj

    def test_components_sum_to_total(self):
        e = access_energy(L1)
        total = e.decode_nj + e.wordline_nj + e.bitline_nj + e.senseamp_nj + e.tag_nj
        assert e.read_nj == pytest.approx(total)


class TestAccounting:
    def make_stats(self, **dl1_counts):
        stats = HierarchyStats()
        for key, value in dl1_counts.items():
            setattr(stats.l1d, key, value)
        return stats

    def test_zero_activity_zero_energy(self):
        params = EnergyParams.from_geometries(L1, L2)
        breakdown = energy_of(self.make_stats(), params)
        assert breakdown.total_nj == 0.0

    def test_array_activity_priced(self):
        params = EnergyParams(e_l1_read=1.0, e_l1_write=2.0, e_l2_access=5.0)
        breakdown = energy_of(
            self.make_stats(array_reads=10, array_writes=5), params
        )
        assert breakdown.l1_array_nj == pytest.approx(10 * 1.0 + 5 * 2.0)

    def test_check_energy_uses_fractions(self):
        params = EnergyParams(
            e_l1_read=1.0, e_l1_write=1.0, e_l2_access=5.0,
            parity_fraction=0.1, ecc_fraction=0.3,
        )
        breakdown = energy_of(
            self.make_stats(parity_checks=10, ecc_checks=10), params
        )
        assert breakdown.l1_checks_nj == pytest.approx(10 * 0.1 + 10 * 0.3)

    def test_l2_traffic_priced(self):
        params = EnergyParams(e_l1_read=1.0, e_l1_write=1.0, e_l2_access=5.0)
        stats = self.make_stats()
        stats.l2.loads = 4
        stats.l2.stores = 2
        breakdown = energy_of(stats, params)
        assert breakdown.l2_nj == pytest.approx(6 * 5.0)

    def test_totals_compose(self):
        params = EnergyParams(e_l1_read=1.0, e_l1_write=1.0, e_l2_access=5.0)
        stats = self.make_stats(array_reads=1, parity_checks=1)
        stats.l2.loads = 1
        breakdown = energy_of(stats, params)
        assert breakdown.total_nj == pytest.approx(
            breakdown.l1_array_nj + breakdown.l1_checks_nj + breakdown.l2_nj
        )

    def test_from_geometries_uses_paper_fractions(self):
        params = EnergyParams.from_geometries(L1, L2)
        assert params.parity_fraction == 0.15
        assert params.ecc_fraction == 0.30


class TestSchemeEnergyOrdering:
    """End-to-end orderings the paper's Figures 16b/17bc rely on."""

    def test_writethrough_burns_more_than_writeback(self):
        from repro.harness.experiment import run_experiment
        from repro.harness.spec import ExperimentSpec

        wb = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "ICR-P-PS(S)", n_instructions=20_000)
        )
        wt = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseP-WT", n_instructions=20_000)
        )
        assert wt.energy.total_nj > wb.energy.total_nj

    def test_ecc_checks_cost_more_than_parity(self):
        from repro.harness.experiment import run_experiment
        from repro.harness.spec import ExperimentSpec

        parity = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=20_000)
        )
        ecc = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseECC", n_instructions=20_000)
        )
        assert ecc.energy.l1_checks_nj > parity.energy.l1_checks_nj


class TestStaticEnergy:
    def test_zero_leakage_by_default(self):
        params = EnergyParams(e_l1_read=1.0, e_l1_write=1.0, e_l2_access=1.0)
        breakdown = energy_of(HierarchyStats(), params, cycles=10_000)
        assert breakdown.static_nj == 0.0

    def test_leakage_accrues_per_cycle(self):
        from repro.energy.accounting import energy_of as eo

        params = EnergyParams(
            e_l1_read=1.0, e_l1_write=1.0, e_l2_access=1.0,
            leakage_nw=500.0, clock_hz=1e9,
        )
        breakdown = eo(HierarchyStats(), params, cycles=2_000_000)
        assert breakdown.static_nj == pytest.approx(500.0 * 2e6 / 1e9)
        assert breakdown.total_nj == breakdown.static_nj

    def test_leakage_from_area_model(self):
        """Tie-in: the area model's leakage feeds the accounting."""
        from repro.energy.area import storage_breakdown

        leak = storage_breakdown(L1, protected=True, icr=True).leakage_nw()
        params = EnergyParams(
            e_l1_read=1.0, e_l1_write=1.0, e_l2_access=1.0, leakage_nw=leak
        )
        breakdown = energy_of(HierarchyStats(), params, cycles=1_000_000)
        assert breakdown.static_nj > 0
