"""Tests for the experiment runner."""

import pytest

from repro.core.schemes import make_config
from repro.harness.experiment import (
    MachineConfig,
    normalized_cycles,
    run_experiment,
    run_schemes,
)
from repro.harness.spec import ExperimentSpec
from repro.workloads.spec2000 import profile_for


class TestRunExperiment:
    def test_returns_complete_result(self):
        result = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "ICR-P-PS(S)", n_instructions=10_000)
        )
        assert result.benchmark == "gzip"
        assert result.scheme == "ICR-P-PS(S)"
        assert result.instructions == 10_000
        assert result.cycles > 0
        assert 0.0 <= result.miss_rate <= 1.0
        assert 0.0 <= result.loads_with_replica <= 1.0
        assert result.energy.total_nj > 0

    def test_accepts_profile_object(self):
        profile = profile_for("mesa")
        result = run_experiment(
            ExperimentSpec.from_kwargs(profile, "BaseP", n_instructions=5_000)
        )
        assert result.benchmark == "mesa"

    def test_accepts_prebuilt_config(self):
        config = make_config("BaseECC")
        result = run_experiment(
            ExperimentSpec.from_kwargs("gzip", config, n_instructions=5_000)
        )
        assert result.scheme == "BaseECC"

    def test_config_plus_kwargs_rejected(self):
        config = make_config("BaseECC")
        with pytest.raises(ValueError):
            run_experiment(
                ExperimentSpec.from_kwargs(
                    "gzip", config, n_instructions=5_000, decay_window=9
                )
            )

    def test_deterministic(self):
        a = run_experiment(
            ExperimentSpec.from_kwargs("vpr", "ICR-P-PS(S)", n_instructions=10_000)
        )
        b = run_experiment(
            ExperimentSpec.from_kwargs("vpr", "ICR-P-PS(S)", n_instructions=10_000)
        )
        assert a.cycles == b.cycles
        assert a.dl1 == b.dl1

    def test_error_injection_turns_on_tracking(self):
        result = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "BaseP", n_instructions=10_000, error_rate=0.01
        ))
        assert result.dl1["errors_injected"] > 0

    def test_error_injection_with_config_requires_tracking(self):
        config = make_config("BaseP")  # track_data=False
        with pytest.raises(ValueError):
            run_experiment(
                ExperimentSpec.from_kwargs(
                    "gzip", config, n_instructions=5_000, error_rate=0.01
                )
            )

    def test_machine_config_energy_fractions(self):
        cheap = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "BaseECC", n_instructions=10_000,
            machine=MachineConfig(ecc_fraction=0.10),
        ))
        costly = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "BaseECC", n_instructions=10_000,
            machine=MachineConfig(ecc_fraction=0.50),
        ))
        assert costly.energy.l1_checks_nj > cheap.energy.l1_checks_nj
        assert costly.cycles == cheap.cycles  # energy model is offline


class TestRunSchemes:
    def test_runs_all_requested(self):
        results = run_schemes("gzip", ["BaseP", "BaseECC"], n_instructions=5_000)
        assert set(results) == {"BaseP", "BaseECC"}

    def test_normalized_cycles(self):
        results = run_schemes(
            "gzip", ["BaseP", "BaseECC"], n_instructions=10_000
        )
        norm = normalized_cycles(results)
        assert norm["BaseP"] == 1.0
        assert norm["BaseECC"] > 1.0


class TestWarmupExclusion:
    def test_warmup_lowers_measured_miss_rate(self):
        cold = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=20_000)
        )
        warm = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "BaseP", n_instructions=20_000, warmup_instructions=30_000
        ))
        assert warm.miss_rate < cold.miss_rate

    def test_warmup_zero_is_identity(self):
        a = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=10_000)
        )
        b = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "BaseP", n_instructions=10_000, warmup_instructions=0
        ))
        assert a.cycles == b.cycles
        assert a.dl1 == b.dl1

    def test_warmup_counts_exclude_warm_phase(self):
        warm = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "BaseP", n_instructions=10_000, warmup_instructions=10_000
        ))
        # Post-reset the dL1 sees only the measured phase's accesses.
        mem_ops = warm.dl1["loads"] + warm.dl1["stores"]
        assert mem_ops < 10_000  # ~34% of 10K instructions
