"""Unit and property tests for the (72, 64) SEC-DED Hamming code."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.hamming import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeStatus,
    EccWord,
    decode,
    encode,
    extract_data,
)

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)
BITS = st.integers(min_value=0, max_value=CODEWORD_BITS - 1)


class TestEncode:
    def test_zero_encodes_to_zero(self):
        assert encode(0) == 0

    @given(WORDS)
    def test_roundtrip(self, word):
        assert extract_data(encode(word)) == word

    @given(WORDS)
    def test_clean_codeword_decodes_ok(self, word):
        result = decode(encode(word))
        assert result.status is DecodeStatus.OK
        assert result.data == word

    @given(WORDS)
    def test_codeword_fits_72_bits(self, word):
        assert encode(word) < (1 << CODEWORD_BITS)

    def test_data_is_masked(self):
        assert extract_data(encode(1 << 64)) == 0

    @given(WORDS, WORDS)
    def test_distinct_words_distinct_codewords(self, a, b):
        if a != b:
            assert encode(a) != encode(b)


class TestSingleErrorCorrection:
    def test_every_single_bit_position_corrected(self):
        """Exhaustive: flip each of the 72 codeword bits, decode must fix it."""
        word = 0xDEADBEEF_CAFEBABE
        codeword = encode(word)
        for bit in range(CODEWORD_BITS):
            result = decode(codeword ^ (1 << bit))
            assert result.status is DecodeStatus.CORRECTED, f"bit {bit}"
            assert result.data == word, f"bit {bit}"

    @given(WORDS, BITS)
    @settings(max_examples=200)
    def test_random_single_flips_corrected(self, word, bit):
        result = decode(encode(word) ^ (1 << bit))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == word
        assert result.usable


class TestDoubleErrorDetection:
    def test_exhaustive_double_flips_on_one_word(self):
        """All C(72,2) = 2556 double flips must be DETECTED, never silent."""
        word = 0x0123456789ABCDEF
        codeword = encode(word)
        for a, b in itertools.combinations(range(CODEWORD_BITS), 2):
            result = decode(codeword ^ (1 << a) ^ (1 << b))
            assert result.status is DecodeStatus.DETECTED, f"bits {a},{b}"
            assert not result.usable

    @given(WORDS, BITS, BITS)
    @settings(max_examples=200)
    def test_random_double_flips_detected(self, word, a, b):
        if a == b:
            return
        result = decode(encode(word) ^ (1 << a) ^ (1 << b))
        assert result.status is DecodeStatus.DETECTED


class TestEccWord:
    def test_clean_read(self):
        cell = EccWord(42)
        result = cell.read()
        assert result.status is DecodeStatus.OK
        assert result.data == 42

    def test_flip_and_correct(self):
        cell = EccWord(42)
        cell.flip_bit(10)
        result = cell.read()
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == 42

    def test_double_flip_detected(self):
        cell = EccWord(42)
        cell.flip_bit(10)
        cell.flip_bit(20)
        result = cell.read()
        assert result.status is DecodeStatus.DETECTED

    def test_rewrite_clears_errors(self):
        cell = EccWord(42)
        cell.flip_bit(0)
        cell.flip_bit(1)
        cell.write(43)
        assert cell.read().status is DecodeStatus.OK

    def test_bad_bit_index_rejected(self):
        cell = EccWord(0)
        with pytest.raises(ValueError):
            cell.flip_bit(CODEWORD_BITS)
        with pytest.raises(ValueError):
            cell.flip_bit(-1)

    def test_data_property_reflects_corruption(self):
        """Raw data access bypasses the decoder (used by silent-error checks)."""
        cell = EccWord(0)
        # Find a data-bit position and flip it via the codeword.
        from repro.coding.hamming import _DATA_POSITIONS

        cell.flip_bit(_DATA_POSITIONS[3])
        assert cell.data == (1 << 3)


class TestConstants:
    def test_layout_counts(self):
        assert DATA_BITS == 64
        assert CODEWORD_BITS == 72

    def test_overhead_matches_paper(self):
        # "8 bit SEC-DED for a 64-bit entity ... 12.5% extra overhead"
        assert (CODEWORD_BITS - DATA_BITS) / DATA_BITS == 0.125
