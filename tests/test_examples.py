"""Every example script must run end to end (scaled down via env)."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).parent.parent.joinpath("examples").glob("*.py")
)
_FAST_ENV = {**os.environ, "REPRO_EXAMPLE_N": "4000"}


class TestRoster:
    def test_at_least_nine_examples(self):
        assert len(EXAMPLES) >= 9

    def test_quickstart_exists(self):
        assert any(p.name == "quickstart.py" for p in EXAMPLES)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        env=_FAST_ENV,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
