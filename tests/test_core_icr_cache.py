"""Behavioural tests for the ICR data cache — the paper's core mechanism."""

import pytest

from repro.coding.protection import ProtectionKind
from repro.core.config import VictimPolicy
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config

N_SETS = 64  # default 16KB/4-way/64B geometry


def addr(set_index: int, tag: int = 0, word: int = 0) -> int:
    """Byte address mapping to *set_index* with a distinguishing tag."""
    return (tag * N_SETS + set_index) * 64 + word * 8


def make(scheme="ICR-P-PS(S)", **kwargs):
    kwargs.setdefault("decay_window", 0)
    kwargs.setdefault("replicate_into_invalid", True)
    return ICRCache(make_config(scheme, **kwargs))


def primary_of(cache, byte_addr):
    return cache.probe(cache.geometry.block_addr(byte_addr))


class TestReplicationTriggers:
    def test_store_scheme_replicates_on_store_hit(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), False, 0)  # fill (no attempt under S)
        assert cache.stats.replication_attempts == 0
        cache.access(addr(0), True, 1)
        assert cache.stats.replication_attempts == 1
        assert primary_of(cache, addr(0)).has_replica

    def test_store_scheme_replicates_on_store_miss(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        assert primary_of(cache, addr(0)).has_replica

    def test_store_scheme_does_not_replicate_loads(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), False, 0)
        cache.access(addr(0), False, 1)
        assert not primary_of(cache, addr(0)).has_replica

    def test_ls_scheme_replicates_on_load_miss(self):
        cache = make("ICR-P-PS(LS)")
        cache.access(addr(0), False, 0)
        assert primary_of(cache, addr(0)).has_replica
        assert cache.stats.replication_attempts == 1

    def test_base_scheme_never_replicates(self):
        cache = make("BaseP")
        cache.access(addr(0), True, 0)
        cache.access(addr(0), True, 1)
        assert cache.stats.replication_attempts == 0
        assert not primary_of(cache, addr(0)).has_replica

    def test_no_second_attempt_while_replicated(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        cache.access(addr(0), True, 1)
        assert cache.stats.replication_attempts == 1


class TestReplicaPlacement:
    def test_replica_lands_at_distance_n_over_2(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(3), True, 0)
        replica = primary_of(cache, addr(3)).replica_refs[0]
        home = (3 + N_SETS // 2) % N_SETS
        assert replica in cache.sets[home]
        assert replica.is_replica
        assert replica.block_addr == cache.geometry.block_addr(addr(3))

    def test_horizontal_distance_0_stays_in_set(self):
        cache = make("ICR-P-PS(S)", replica_distances=("0",))
        cache.access(addr(5), True, 0)
        replica = primary_of(cache, addr(5)).replica_refs[0]
        assert replica in cache.sets[5]

    def test_horizontal_never_evicts_own_primary(self):
        cache = make("ICR-P-PS(S)", replica_distances=("0",))
        cache.access(addr(5), True, 0)
        primary = primary_of(cache, addr(5))
        assert primary is not None
        assert primary.valid and not primary.is_replica

    def test_multi_attempt_falls_back(self):
        cache = make("ICR-P-PS(S)", replica_distances=("N/2", "N/4"),
                     replicate_into_invalid=False, victim_policy=VictimPolicy.DEAD_ONLY)
        target_a = (0 + 32) % N_SETS
        target_b = (0 + 16) % N_SETS
        # Fill the N/2 target set with replicas (not victim candidates).
        for tag in range(4):
            cache.access(addr(target_a - 32, tag=tag + 10), True, tag)
        assert all(b.valid and b.is_replica for b in cache.sets[target_a]) or True
        # Put a dead primary in the N/4 target.
        cache.access(addr(target_b, tag=50), False, 90)
        before = cache.stats.replication_successes
        cache.access(addr(0, tag=60), True, 100)
        primary = primary_of(cache, addr(0, tag=60))
        if cache.stats.replication_successes > before:
            replica_sets = [
                si for si, ways in enumerate(cache.sets)
                for b in ways
                if b.valid and b.is_replica and b.block_addr == primary.block_addr
            ]
            assert replica_sets and replica_sets[0] in (target_a, target_b)

    def test_replica_not_found_by_primary_probe(self):
        """The is_replica bit prevents replica tags answering lookups."""
        cache = make("ICR-P-PS(S)")
        cache.access(addr(3), True, 0)
        replica_home = (3 + 32) % N_SETS
        # An access mapping to the replica's set with the replica's tag
        # pattern must not hit on the replica.
        assert primary_of(cache, addr(replica_home, tag=0)) is None


class TestReplicaCoherence:
    def test_store_updates_all_replicas(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        cache.access(addr(0), True, 1)
        assert cache.stats.replica_updates == 1

    def test_replica_updates_counted_per_replica(self):
        cache = make(
            "ICR-P-PS(S)",
            max_replicas=2,
            second_replica_distances=("N/4",),
        )
        cache.access(addr(0), True, 0)
        assert len(primary_of(cache, addr(0)).replica_refs) == 2
        cache.access(addr(0), True, 1)
        assert cache.stats.replica_updates == 2

    def test_replica_content_tracks_primary(self):
        cache = make("ICR-P-PS(S)", track_data=True)
        cache.access(addr(0, word=2), True, 0)
        primary = primary_of(cache, addr(0))
        replica = primary.replica_refs[0]
        assert replica.golden == primary.golden
        cache.access(addr(0, word=5), True, 1)
        assert replica.golden == primary.golden
        assert replica.words[5].raw_data == primary.words[5].raw_data


class TestReplacementBehaviour:
    def _evict_primary(self, cache, set_index):
        """Fill *set_index* with new primaries until the original leaves."""
        for tag in range(1, 6):
            cache.access(addr(set_index, tag=tag), False, 100 + tag)

    def test_drop_mode_invalidates_replicas(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        self._evict_primary(cache, 0)
        assert cache.stats.replica_evictions >= 1
        summary = cache.contents_summary()
        target = (0 + 32) % N_SETS
        assert not any(
            b.valid
            and b.is_replica
            and b.block_addr == cache.geometry.block_addr(addr(0))
            for b in cache.sets[target]
        )

    def test_leave_mode_keeps_orphan_replica(self):
        cache = make("ICR-P-PS(S)", leave_replicas_on_evict=True)
        cache.access(addr(0), True, 0)
        self._evict_primary(cache, 0)
        target = (0 + 32) % N_SETS
        orphans = [
            b
            for b in cache.sets[target]
            if b.valid and b.is_replica
            and b.block_addr == cache.geometry.block_addr(addr(0))
        ]
        assert len(orphans) == 1
        assert orphans[0].primary_ref is None

    def test_leave_mode_replica_fill_on_miss(self):
        cache = make("ICR-P-PS(S)", leave_replicas_on_evict=True)
        cache.access(addr(0), True, 0)
        self._evict_primary(cache, 0)
        outcome = cache.access(addr(0), False, 200)
        assert outcome.replica_fill
        assert outcome.latency == 2
        assert cache.stats.replica_fills == 1
        # The block is a primary again and still linked to the replica.
        primary = primary_of(cache, addr(0))
        assert primary is not None and primary.has_replica

    def test_drop_mode_miss_goes_to_l2(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        self._evict_primary(cache, 0)
        outcome = cache.access(addr(0), False, 200)
        assert not outcome.replica_fill
        assert outcome.latency is None  # hierarchy must fetch from L2

    def test_replica_eviction_unlinks_primary(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        primary = primary_of(cache, addr(0))
        replica = primary.replica_refs[0]
        cache.evict(replica)
        assert not primary.has_replica

    def test_dirty_primary_eviction_writes_back(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        self._evict_primary(cache, 0)
        assert cache.stats.writebacks == 1

    def test_replica_eviction_is_never_a_writeback(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        primary = primary_of(cache, addr(0))
        cache.evict(primary.replica_refs[0])
        assert cache.stats.writebacks == 0


class TestProtectionSwitching:
    def test_icr_ecc_line_switches_to_parity_when_replicated(self):
        cache = make("ICR-ECC-PS(S)")
        cache.access(addr(0), False, 0)
        assert primary_of(cache, addr(0)).protection is ProtectionKind.ECC
        cache.access(addr(0), True, 1)
        assert primary_of(cache, addr(0)).protection is ProtectionKind.PARITY

    def test_icr_ecc_line_reverts_when_replica_lost(self):
        cache = make("ICR-ECC-PS(S)")
        cache.access(addr(0), True, 0)
        primary = primary_of(cache, addr(0))
        cache.evict(primary.replica_refs[0])
        assert primary.protection is ProtectionKind.ECC

    def test_icr_p_lines_always_parity(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        assert primary_of(cache, addr(0)).protection is ProtectionKind.PARITY

    def test_replicas_are_parity_protected(self):
        cache = make("ICR-ECC-PS(S)")
        cache.access(addr(0), True, 0)
        replica = primary_of(cache, addr(0)).replica_refs[0]
        assert replica.protection is ProtectionKind.PARITY


class TestCountersAndMetrics:
    def test_loads_with_replica_counted(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        cache.access(addr(0), False, 1)
        cache.access(addr(1), False, 2)  # different set, no replica
        cache.access(addr(1), False, 3)
        assert cache.stats.load_hits_with_replica == 1
        assert cache.stats.loads_with_replica == pytest.approx(1 / 2)

    def test_pp_scheme_reads_replica_in_parallel(self):
        cache = make("ICR-P-PP(S)")
        cache.access(addr(0), True, 0)
        reads_before = cache.stats.array_reads
        cache.access(addr(0), False, 1)
        assert cache.stats.array_reads == reads_before + 2  # primary + replica

    def test_ps_scheme_reads_only_primary(self):
        cache = make("ICR-P-PS(S)")
        cache.access(addr(0), True, 0)
        reads_before = cache.stats.array_reads
        cache.access(addr(0), False, 1)
        assert cache.stats.array_reads == reads_before + 1

    def test_second_replica_counters(self):
        cache = make(
            "ICR-P-PS(S)", max_replicas=2, second_replica_distances=("N/4",)
        )
        cache.access(addr(0), True, 0)
        assert cache.stats.second_replica_attempts == 1
        assert cache.stats.second_replica_successes == 1

    def test_dead_eviction_counted(self):
        cache = make("ICR-P-PS(S)", replicate_into_invalid=False)
        target = (0 + 32) % N_SETS
        cache.access(addr(target, tag=9), False, 0)  # a (dead) primary there
        cache.access(addr(0), True, 10)
        assert cache.stats.dead_evictions == 1


class TestWriteThroughMode:
    def test_stores_do_not_dirty_blocks(self):
        cache = make("BaseP-WT")
        cache.access(addr(0), True, 0)
        assert not primary_of(cache, addr(0)).dirty

    def test_writeback_mode_dirties(self):
        cache = make("BaseP")
        cache.access(addr(0), True, 0)
        assert primary_of(cache, addr(0)).dirty
