"""Tests for the Kim & Somani transient-error models."""

import random

import pytest

from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config
from repro.errors.models import (
    MODELS,
    AdjacentModel,
    ColumnModel,
    DirectModel,
    RandomModel,
    make_model,
)


def tracked_cache(n_blocks=32):
    cache = ICRCache(make_config("BaseP", track_data=True))
    for i in range(n_blocks):
        cache.access(i * 64, True, i)
    return cache


class TestFactory:
    def test_all_models_constructible(self):
        assert set(MODELS) == {"random", "direct", "adjacent", "column", "burst"}
        for name in MODELS:
            assert make_model(name).name == name

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_model("gamma-ray")


class TestRandomModel:
    def test_yields_one_site_in_valid_line(self):
        cache = tracked_cache()
        rng = random.Random(7)
        sites = list(RandomModel().sites(cache, rng))
        assert len(sites) == 1
        site = sites[0]
        block = cache.sets[site.set_index][site.way]
        assert block.valid and block.words is not None
        assert 0 <= site.word_index < 8

    def test_empty_cache_yields_nothing(self):
        cache = ICRCache(make_config("BaseP", track_data=True))
        assert list(RandomModel().sites(cache, random.Random(1))) == []

    def test_sites_spread_over_cache(self):
        cache = tracked_cache()
        rng = random.Random(3)
        seen = {
            (s.set_index, s.way)
            for _ in range(200)
            for s in RandomModel().sites(cache, rng)
        }
        assert len(seen) > 10


class TestDirectModel:
    def test_targets_mru_line_of_a_set(self):
        cache = tracked_cache()
        rng = random.Random(5)
        sites = list(DirectModel().sites(cache, rng))
        assert len(sites) == 1
        site = sites[0]
        ways = cache.sets[site.set_index]
        chosen = ways[site.way]
        valid_ways = [b for b in ways if b.valid and b.words is not None]
        assert chosen.lru_stamp == max(b.lru_stamp for b in valid_ways)


class TestAdjacentModel:
    def test_two_adjacent_bits_same_word(self):
        cache = tracked_cache()
        sites = list(AdjacentModel().sites(cache, random.Random(11)))
        assert len(sites) == 2
        a, b = sites
        assert (a.set_index, a.way, a.word_index) == (b.set_index, b.way, b.word_index)
        assert b.bit == a.bit + 1


class TestColumnModel:
    def test_same_bit_two_ways(self):
        cache = tracked_cache(n_blocks=64 * 2)  # two valid ways everywhere
        sites = list(ColumnModel().sites(cache, random.Random(13)))
        assert len(sites) == 2
        a, b = sites
        assert a.set_index == b.set_index
        assert a.way != b.way
        assert a.word_index == b.word_index
        assert a.bit == b.bit

    def test_single_valid_way_yields_one_site(self):
        cache = tracked_cache(n_blocks=4)
        sites = list(ColumnModel().sites(cache, random.Random(17)))
        assert 1 <= len(sites) <= 2
